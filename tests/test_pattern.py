"""Unit tests for the Pattern class."""

import pytest

from repro import Pattern, Predicate
from repro.errors import PatternError


@pytest.fixture()
def diamond():
    """a -> b, a -> c, b -> d, c -> d"""
    p = Pattern(name="diamond")
    a = p.add_node("A")
    b = p.add_node("B")
    c = p.add_node("C")
    d = p.add_node("D")
    p.add_edge(a, b)
    p.add_edge(a, c)
    p.add_edge(b, d)
    p.add_edge(c, d)
    return p


class TestConstruction:
    def test_counts(self, diamond):
        assert diamond.num_nodes == 4
        assert diamond.num_edges == 4
        assert diamond.size == 8

    def test_duplicate_edge_rejected(self, diamond):
        with pytest.raises(PatternError):
            diamond.add_edge(0, 1)

    def test_unknown_edge_endpoint(self, diamond):
        with pytest.raises(PatternError):
            diamond.add_edge(0, 99)

    def test_empty_label_rejected(self):
        with pytest.raises(PatternError):
            Pattern().add_node("")

    def test_predicate_type_checked(self):
        with pytest.raises(PatternError):
            Pattern().add_node("A", predicate=">= 3")

    def test_explicit_node_id(self):
        p = Pattern()
        assert p.add_node("A", node_id=5) == 5
        assert p.add_node("B") == 6
        with pytest.raises(PatternError):
            p.add_node("C", node_id=5)


class TestTopology:
    def test_neighbors_children_parents(self, diamond):
        assert diamond.neighbors(1) == {0, 3}
        assert diamond.children(0) == {1, 2}
        assert diamond.parents(3) == {1, 2}

    def test_has_edge(self, diamond):
        assert diamond.has_edge(0, 1)
        assert not diamond.has_edge(1, 0)

    def test_edges_sorted(self, diamond):
        assert list(diamond.edges()) == [(0, 1), (0, 2), (1, 3), (2, 3)]

    def test_degree(self, diamond):
        assert diamond.degree(0) == 2
        assert diamond.degree(3) == 2

    def test_labels(self, diamond):
        assert diamond.labels() == {"A", "B", "C", "D"}
        assert diamond.nodes_with_label("A") == {0}

    def test_connected(self, diamond):
        assert diamond.is_connected()
        p = Pattern()
        p.add_node("A")
        p.add_node("B")
        assert not p.is_connected()
        assert Pattern().is_connected()  # empty pattern


class TestPredicates:
    def test_default_trivial(self, diamond):
        assert diamond.predicate_of(0).is_trivial

    def test_set_predicate(self, diamond):
        diamond.set_predicate(0, Predicate.of((">=", 3)))
        assert not diamond.predicate_of(0).is_trivial
        assert diamond.num_predicates == 1

    def test_num_predicates_counts_atoms(self, diamond):
        diamond.set_predicate(0, Predicate.of((">=", 3), ("<=", 9)))
        diamond.set_predicate(1, Predicate.of(("=", 1)))
        assert diamond.num_predicates == 3

    def test_validate_rejects_unsatisfiable(self, diamond):
        diamond.set_predicate(0, Predicate.of(("=", 1), ("=", 2)))
        with pytest.raises(PatternError):
            diamond.validate()

    def test_validate_rejects_empty_pattern(self):
        with pytest.raises(PatternError):
            Pattern().validate()

    def test_matches_node(self, tiny_graph):
        p = Pattern()
        y = p.add_node("year", predicate=Predicate.of((">=", 2011)))
        assert p.matches_node(tiny_graph, 1, y)       # year 2012
        p.set_predicate(y, Predicate.of((">=", 2013)))
        assert not p.matches_node(tiny_graph, 1, y)
        m = p.add_node("movie")
        assert not p.matches_node(tiny_graph, 1, m)   # wrong label


class TestCopyAndReverse:
    def test_copy_independent(self, diamond):
        clone = diamond.copy()
        clone.add_node("E")
        assert diamond.num_nodes == 4
        assert clone.num_nodes == 5
        assert clone.name == "diamond"

    def test_reversed_edges(self, diamond):
        flipped = diamond.reversed_edges([(0, 1)])
        assert flipped.has_edge(1, 0)
        assert not flipped.has_edge(0, 1)
        assert flipped.has_edge(0, 2)  # untouched edges preserved
        assert flipped.num_edges == diamond.num_edges

    def test_reverse_preserves_predicates(self, diamond):
        diamond.set_predicate(0, Predicate.of(("=", 1)))
        flipped = diamond.reversed_edges([(0, 1)])
        assert flipped.predicate_of(0) == diamond.predicate_of(0)

    def test_repr(self, diamond):
        assert "diamond" in repr(diamond)
