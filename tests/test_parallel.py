"""Sharded artifacts, the worker-process pool, and sharded sessions.

Covers the round-trip contract (compile --shards -> warm open ->
identical answers), single-shard corruption detection, the
fork-and-spawn worker pool, the sharded ``QueryEngine`` session guards,
and the execution-memo + determinism regressions.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AccessConstraint, AccessSchema, AccessStats, Graph, \
    Pattern, QueryEngine, SchemaIndex, execute_plan, qplan
from repro.core.actualized import SIMULATION, SUBGRAPH
from repro.core.ebchk import is_effectively_bounded
from repro.engine import persist
from repro.engine.parallel import ProcessShardBackend
from repro.errors import ArtifactCorrupt, ArtifactError, EngineError
from repro.matching.bounded import canonical_answer

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

_SETTINGS = dict(max_examples=10, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])

SHARDS = 3


@pytest.fixture(scope="module")
def workload(imdb_small):
    """A handful of bounded patterns over the small IMDb stand-in."""
    import random

    from repro.pattern.generator import PatternGenerator

    graph, schema = imdb_small
    generator = PatternGenerator.from_graph(graph, rng=random.Random(11),
                                            schema=schema)
    pool = generator.generate_many(60)
    sub = [q for q in pool
           if is_effectively_bounded(q, schema, SUBGRAPH).bounded][:4]
    sim = [q for q in pool
           if is_effectively_bounded(q, schema, SIMULATION).bounded][:4]
    assert sub and sim
    return sub, sim


@pytest.fixture(scope="module")
def sequential_engine(imdb_small):
    graph, schema = imdb_small
    return QueryEngine.open(graph, schema)


@pytest.fixture(scope="module")
def sharded_artifact(tmp_path_factory, imdb_small, workload):
    """A sharded artifact with the workload's plans pre-compiled."""
    graph, schema = imdb_small
    sub, sim = workload
    engine = QueryEngine.open(graph, schema)
    for q in sub:
        engine.prepare(q, SUBGRAPH)
    for q in sim:
        engine.prepare(q, SIMULATION)
    path = tmp_path_factory.mktemp("sharded") / "artifact"
    manifest = engine.save(path, shards=SHARDS)
    assert manifest["layout"] == "sharded"
    return path


def reference_answers(engine, workload):
    sub, sim = workload
    return (
        [canonical_answer(SUBGRAPH,
                          engine.query(q, SUBGRAPH,
                                       stats=AccessStats()).answer)
         for q in sub],
        [canonical_answer(SIMULATION,
                          engine.query(q, SIMULATION,
                                       stats=AccessStats()).answer)
         for q in sim],
    )


class TestShardedRoundTrip:
    def test_warm_open_identical_answers_both_semantics(
            self, sharded_artifact, sequential_engine, workload):
        expected = reference_answers(sequential_engine, workload)
        with QueryEngine.open_path(sharded_artifact,
                                   strategy="scatter") as engine:
            assert engine.sharded and engine.exec_workers == 0
            assert reference_answers(engine, workload) == expected

    def test_plan_cache_rehydrated(self, sharded_artifact, workload):
        sub, _ = workload
        with QueryEngine.open_path(sharded_artifact,
                                   strategy="scatter") as engine:
            engine.prepare(sub[0], SUBGRAPH)
            assert engine.stats.plan_cache_hits == 1
            assert engine.stats.plan_cache_misses == 0

    def test_access_accounting_matches_sequential(
            self, sharded_artifact, sequential_engine, workload):
        sub, sim = workload
        with QueryEngine.open_path(sharded_artifact,
                                   strategy="scatter") as engine:
            for semantics, queries in ((SUBGRAPH, sub), (SIMULATION, sim)):
                for q in queries:
                    seq_stats, shard_stats = AccessStats(), AccessStats()
                    sequential_engine.query(q, semantics, stats=seq_stats,
                                            refresh=True)
                    engine.query(q, semantics, stats=shard_stats,
                                 refresh=True)
                    assert shard_stats.as_dict() == seq_stats.as_dict()

    def test_query_batch_scatter_matches_and_dedupes(
            self, sharded_artifact, sequential_engine, workload):
        sub, _ = workload
        batch = list(sub) * 3
        expected = [canonical_answer(SUBGRAPH, run.answer)
                    for run in sequential_engine.query_batch(
                        batch, SUBGRAPH, stats=AccessStats())]
        with QueryEngine.open_path(sharded_artifact,
                                   strategy="scatter") as engine:
            stats = AccessStats()
            runs = engine.query_batch(batch, SUBGRAPH, stats=stats)
            assert [canonical_answer(SUBGRAPH, run.answer)
                    for run in runs] == expected
            # Distinct queries execute once per batch; repeats share runs.
            assert runs[0] is runs[len(sub)]

    def test_answer_memo_reused_without_stats(self, sharded_artifact,
                                              workload):
        sub, _ = workload
        with QueryEngine.open_path(sharded_artifact,
                                   strategy="scatter") as engine:
            first = engine.query(sub[0])
            assert engine.query(sub[0]) is first

    def test_inspect_reports_shard_layout(self, sharded_artifact):
        info = persist.inspect_artifact(sharded_artifact)
        assert info["layout"] == "sharded"
        assert info["partition"]["num_shards"] == SHARDS
        assert len(info["shards"]) == SHARDS
        assert all(meta["status"] == "ok" for meta in info["shards"])
        rendered = persist.render_inspection(info)
        assert "cross-shard edges" in rendered
        assert "shard-0000" in rendered

    def test_exact_cover_recorded_in_manifest(self, sharded_artifact,
                                              imdb_small):
        graph, _ = imdb_small
        manifest = json.loads(
            (sharded_artifact / "manifest.json").read_text())
        assert sum(meta["owned_nodes"]
                   for meta in manifest["shards"]) == graph.num_nodes
        assert sum(meta["owned_edges"]
                   for meta in manifest["shards"]) == graph.num_edges


class TestShardedSessionGuards:
    def test_workers_rejected_for_single_artifact(self, tmp_path,
                                                  sequential_engine):
        path = tmp_path / "single"
        sequential_engine.save(path)
        with pytest.raises(EngineError, match="not sharded"):
            QueryEngine.open_path(path, workers=2)

    def test_no_schema_index(self, sharded_artifact):
        with QueryEngine.open_path(sharded_artifact,
                                   strategy="scatter") as engine:
            with pytest.raises(EngineError, match="sharded session"):
                engine.schema_index

    def test_no_save_no_apply_no_thaw(self, sharded_artifact):
        from repro.graph.delta import GraphDelta
        with QueryEngine.open_path(sharded_artifact,
                                   strategy="scatter") as engine:
            with pytest.raises(EngineError):
                engine.save(sharded_artifact)
            with pytest.raises(EngineError):
                engine.apply(GraphDelta())
        with pytest.raises(EngineError, match="frozen only"):
            QueryEngine.open_path(sharded_artifact, frozen=False)
        with pytest.raises(EngineError, match="validate"):
            QueryEngine.open_path(sharded_artifact, validate=True,
                                  strategy="scatter")

    def test_zero_shards_save_is_single(self, tmp_path, sequential_engine):
        manifest = sequential_engine.save(tmp_path / "art", shards=0)
        assert manifest["layout"] == "single"


class TestMergedSequentialStrategy:
    """Satellite: ``workers=0`` on a sharded artifact now serves the
    merged sequential view (strategy="auto") — in-process scatter on one
    CPU only paid coordination overhead."""

    def test_auto_resolves_to_merged_sequential(self, sharded_artifact,
                                                sequential_engine,
                                                workload):
        expected = reference_answers(sequential_engine, workload)
        with QueryEngine.open_path(sharded_artifact) as engine:
            assert engine.sharded is False
            assert engine.executor_strategy in ("vectorized", "sequential")
            assert engine.graph.num_nodes \
                == sequential_engine.graph.num_nodes
            assert engine.graph.num_edges \
                == sequential_engine.graph.num_edges
            assert reference_answers(engine, workload) == expected

    def test_merged_accounting_matches_sequential(
            self, sharded_artifact, sequential_engine, workload):
        sub, sim = workload
        with QueryEngine.open_path(sharded_artifact) as engine:
            for semantics, queries in ((SUBGRAPH, sub), (SIMULATION, sim)):
                for q in queries:
                    seq_stats, merged_stats = AccessStats(), AccessStats()
                    sequential_engine.query(q, semantics, stats=seq_stats,
                                            refresh=True)
                    engine.query(q, semantics, stats=merged_stats,
                                 refresh=True)
                    assert merged_stats.as_dict() == seq_stats.as_dict()

    def test_merged_plan_cache_rehydrated(self, sharded_artifact, workload):
        sub, _ = workload
        with QueryEngine.open_path(sharded_artifact) as engine:
            engine.prepare(sub[0], SUBGRAPH)
            assert engine.stats.plan_cache_hits == 1
            assert engine.stats.plan_cache_misses == 0

    def test_sequential_strategy_incompatible_with_workers(
            self, sharded_artifact):
        with pytest.raises(EngineError, match="incompatible with workers"):
            QueryEngine.open_path(sharded_artifact, strategy="sequential",
                                  workers=1)

    def test_unknown_strategy_rejected(self, sharded_artifact):
        with pytest.raises(EngineError, match="unknown strategy"):
            QueryEngine.open_path(sharded_artifact, strategy="bogus")

    def test_scatter_strategy_rejected_for_single_layout(
            self, tmp_path, sequential_engine):
        path = tmp_path / "single"
        sequential_engine.save(path)
        with pytest.raises(EngineError, match="not sharded"):
            QueryEngine.open_path(path, strategy="scatter")

    def test_validate_allowed_on_merged_view(self, sharded_artifact):
        # The merged index is the global index, so cardinality bounds
        # are checkable — unlike the scatter path, which still rejects.
        QueryEngine.open_path(sharded_artifact, validate=True).close()


class TestCorruptionDetection:
    def test_any_shard_manifest_tamper_detected(self, tmp_path,
                                                sequential_engine):
        path = tmp_path / "art"
        sequential_engine.save(path, shards=SHARDS)
        for shard_id in range(SHARDS):
            target = path / persist.shard_dir_name(shard_id) / "manifest.json"
            original = target.read_bytes()
            target.write_bytes(original.replace(b"repro", b"REPRO", 1))
            with pytest.raises(ArtifactError):
                QueryEngine.open_path(path)
            target.write_bytes(original)
        QueryEngine.open_path(path).close()

    def test_any_single_shard_payload_corruption_detected(
            self, tmp_path, sequential_engine):
        """Flipping one byte in any file of any shard is detected at
        open — before a worker ever serves from it."""
        path = tmp_path / "art"
        sequential_engine.save(path, shards=SHARDS)
        for shard_id in range(SHARDS):
            for name in persist.PAYLOAD_FILES:
                target = path / persist.shard_dir_name(shard_id) / name
                data = bytearray(target.read_bytes())
                data[len(data) // 2] ^= 0xFF
                original = target.read_bytes()
                target.write_bytes(bytes(data))
                with pytest.raises(ArtifactError):
                    QueryEngine.open_path(path)
                target.write_bytes(original)

    def test_partition_file_corruption_detected(self, tmp_path,
                                                sequential_engine):
        path = tmp_path / "art"
        sequential_engine.save(path, shards=SHARDS)
        target = path / persist.PARTITION_FILE
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0xFF
        target.write_bytes(bytes(data))
        with pytest.raises(ArtifactError):
            QueryEngine.open_path(path)

    def test_missing_shard_dir_detected(self, tmp_path, sequential_engine):
        import shutil
        path = tmp_path / "art"
        sequential_engine.save(path, shards=SHARDS)
        shutil.rmtree(path / persist.shard_dir_name(1))
        with pytest.raises(ArtifactCorrupt):
            QueryEngine.open_path(path)


@given(position=st.floats(0, 0.999), flip=st.integers(1, 255),
       shard=st.integers(0, SHARDS - 1))
@settings(**_SETTINGS)
def test_single_byte_shard_corruption_property(tmp_path_factory, position,
                                               flip, shard):
    """Property form of the corruption claim, over random byte flips."""
    graph = Graph()
    m = graph.add_node("movie")
    y = graph.add_node("year", value=2012)
    graph.add_edge(m, y)
    schema = AccessSchema([AccessConstraint((), "movie", 5),
                           AccessConstraint(("movie",), "year", 5)])
    path = tmp_path_factory.mktemp("corrupt") / "art"
    QueryEngine.open(graph, schema).save(path, shards=SHARDS)
    files = sorted(persist.PAYLOAD_FILES)
    target = path / persist.shard_dir_name(shard) \
        / files[int(position * len(files)) % len(files)]
    data = bytearray(target.read_bytes())
    data[int(position * len(data))] ^= flip
    target.write_bytes(bytes(data))
    with pytest.raises(ArtifactError):
        QueryEngine.open_path(path)


class TestProcessPool:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_worker_pool_identical_answers(self, start_method,
                                           sharded_artifact,
                                           sequential_engine, workload):
        """The multiprocessing smoke: warm-started workers answer
        identically under fork *and* spawn (the strictest start method —
        nothing may depend on inherited memory)."""
        ctx = multiprocessing.get_context(start_method)
        expected = reference_answers(sequential_engine, workload)
        with QueryEngine.open_path(sharded_artifact, workers=2,
                                   mp_context=ctx) as engine:
            assert engine.exec_workers == 2
            assert reference_answers(engine, workload) == expected

    def test_more_workers_than_shards_clamped(self, sharded_artifact,
                                              workload):
        sub, _ = workload
        with QueryEngine.open_path(sharded_artifact,
                                   workers=SHARDS + 5) as engine:
            assert engine.exec_workers == SHARDS
            assert engine.query(sub[0]).answer is not None

    def test_close_is_idempotent_and_final(self, sharded_artifact,
                                           workload):
        sub, _ = workload
        engine = QueryEngine.open_path(sharded_artifact, workers=1)
        engine.query(sub[0], stats=AccessStats())
        engine.close()
        engine.close()
        with pytest.raises(EngineError, match="closed"):
            engine.query(sub[0], stats=AccessStats())

    def test_batch_through_worker_pool(self, sharded_artifact,
                                       sequential_engine, workload):
        sub, sim = workload
        batch = [(q, SUBGRAPH) for q in sub] + [(q, SIMULATION) for q in sim]
        expected = [canonical_answer(semantics, run.answer)
                    for (_, semantics), run in zip(
                        batch, sequential_engine.query_batch(
                            batch, stats=AccessStats()))]
        with QueryEngine.open_path(sharded_artifact, workers=2) as engine:
            runs = engine.query_batch(batch, stats=AccessStats())
            assert [canonical_answer(semantics, run.answer)
                    for (_, semantics), run in zip(batch, runs)] == expected

    def test_invalid_worker_count(self, sharded_artifact):
        with pytest.raises(EngineError):
            ProcessShardBackend(sharded_artifact, [0], AccessSchema([]),
                                workers=0)


class TestDeterminism:
    """Satellite: parallel and sequential runs are byte-identical."""

    def test_subgraph_answers_byte_identical(self, sharded_artifact,
                                             sequential_engine, workload):
        sub, _ = workload
        with QueryEngine.open_path(sharded_artifact,
                                   strategy="scatter") as engine:
            for q in sub:
                seq = sequential_engine.query(q, SUBGRAPH,
                                              stats=AccessStats())
                shard = engine.query(q, SUBGRAPH, stats=AccessStats())
                # Not just canonically equal: the emitted answer lists
                # themselves are identical, byte for byte.
                assert json.dumps(seq.answer) == json.dumps(shard.answer)

    def test_simulation_pairs_byte_identical(self, sharded_artifact,
                                             sequential_engine, workload):
        _, sim = workload
        with QueryEngine.open_path(sharded_artifact,
                                   strategy="scatter") as engine:
            for q in sim:
                seq = sequential_engine.query(q, SIMULATION,
                                              stats=AccessStats())
                shard = engine.query(q, SIMULATION, stats=AccessStats())
                assert json.dumps(canonical_answer(SIMULATION, seq.answer)) \
                    == json.dumps(canonical_answer(SIMULATION, shard.answer))

    def test_find_matches_output_is_sorted(self, imdb_small):
        from repro.matching.vf2 import find_matches
        from repro.pattern import parse_pattern
        graph, _ = imdb_small
        pattern = parse_pattern("m: movie; y: year; m -> y")
        matches = find_matches(pattern, graph)
        keys = [tuple(sorted(match.items())) for match in matches]
        assert keys == sorted(keys)


class TestFetchMemoization:
    """Satellite: duplicate (constraint, combo) fetches are free."""

    def _setup(self):
        graph = Graph()
        a1 = graph.add_node("A")
        b_nodes = [graph.add_node("B") for _ in range(3)]
        for b in b_nodes:
            graph.add_edge(a1, b)
        schema = AccessSchema([AccessConstraint((), "A", 5),
                               AccessConstraint(("A",), "B", 5)])
        pattern = Pattern(name="fan")
        pa = pattern.add_node("A")
        pb = pattern.add_node("B")
        pc = pattern.add_node("B")
        pattern.add_edge(pa, pb)
        pattern.add_edge(pa, pc)
        return graph, schema, pattern

    def test_duplicate_fetches_memoized_answers_unchanged(self):
        """Two fetch ops (and two edge checks) sharing one (constraint,
        source-combo) pay the index exactly once, and the answers are
        unchanged."""
        from repro.matching.vf2 import find_matches

        graph, schema, pattern = self._setup()
        plan = qplan(pattern, schema)
        fan_ops = [op for op in plan.ops if not op.is_initial]
        assert len(fan_ops) == 2
        assert len({(op.constraint, op.source_nodes)
                    for op in fan_ops}) == 1, \
            "setup must produce duplicate (constraint, combo) fetches"
        sx = SchemaIndex(graph, schema)
        stats = AccessStats()
        result = execute_plan(plan, sx, stats=stats)
        # Node phase: one type (1) fetch + ONE fan-out fetch (the
        # duplicate op is a memo hit); edge phase: ONE edge fetch for
        # the two checks sharing the same (constraint, combo).
        assert stats.index_fetches == 3
        assert stats.nodes_fetched == 1 + 3
        assert stats.edges_checked == 3
        matches = find_matches(pattern, result.gq,
                               candidates=result.candidates)
        assert len(matches) == 6  # 3 choices for b times 2 for c

    def test_edge_phase_not_folded_into_node_phase(self):
        """Edge-phase fetches stay edge accounting (the paper's Example
        1 arithmetic), even when the node phase already fetched the same
        (constraint, combo)."""
        graph, schema, pattern = self._setup()
        plan = qplan(pattern, schema)
        index_checks = [check for check in plan.edge_checks
                        if check.constraint is not None]
        if not index_checks:
            pytest.skip("plan verifies edges by probe on this schema")
        stats = AccessStats()
        execute_plan(plan, SchemaIndex(graph, schema), stats=stats)
        assert stats.edges_checked > 0

    def test_access_counts_drop_vs_unmemoized(self):
        """Regression: the memoized executor accesses strictly less than
        the plan's duplicate-counting arithmetic, with identical G_Q."""
        graph, schema, pattern = self._setup()
        plan = qplan(pattern, schema)
        sx = SchemaIndex(graph, schema)
        stats = AccessStats()
        execute_plan(plan, sx, stats=stats)
        # Unmemoized: initial + two identical fan-out ops + one fetch
        # per edge check (the seed executor's arithmetic).
        unmemoized_fetches = 1 + 2 + len(plan.edge_checks)
        assert stats.index_fetches < unmemoized_fetches


class TestServeSharded:
    """The server stack over a sharded engine: admission cost unchanged
    (bounds are plan properties), answers unchanged, worker pool closed
    cleanly by the service."""

    def test_serve_over_sharded_engine(self, sharded_artifact,
                                       sequential_engine, workload):
        from repro.pattern.dsl import format_pattern
        from repro.server import QueryService, ServeClient, ServerThread

        sub, _ = workload
        engine = QueryEngine.open_path(sharded_artifact, workers=1)
        expected_cost = sequential_engine.prepare(
            sub[0], SUBGRAPH).worst_case_total_accessed
        expected = sequential_engine.query(
            sub[0], SUBGRAPH, stats=AccessStats())
        service = QueryService(engine, workers=2)
        try:
            with ServerThread(service) as handle:
                with ServeClient(handle.host, handle.port) as client:
                    body = client.query(format_pattern(sub[0]), SUBGRAPH,
                                        limit=1000)
                    snapshot = client.metrics()
            assert body.cost == expected_cost
            assert body.answer_count == len(expected.answer)
            assert body.accessed == expected.stats.total_accessed
            assert snapshot["engine"]["sharded"] is True
            assert snapshot["engine"]["exec_workers"] == 1
        finally:
            service.close()

    def test_admission_budget_rejects_on_sharded(self, sharded_artifact,
                                                 workload):
        from repro.errors import AdmissionRejected
        from repro.server import QueryService

        sub, _ = workload
        with QueryEngine.open_path(sharded_artifact,
                                   strategy="scatter") as engine:
            service = QueryService(engine, max_cost=0.5)
            with pytest.raises(AdmissionRejected):
                service.admit(sub[0], SUBGRAPH)


class TestReviewRegressions:
    def test_stale_sharded_artifact_refused(self, tmp_path, imdb_small):
        """A sharded artifact marked stale must refuse to open, exactly
        like the single layout — and a fresh sharded save repairs it."""
        from repro.errors import ArtifactStale

        graph, schema = imdb_small
        path = tmp_path / "art"
        engine = QueryEngine.open(graph, schema)
        engine.save(path, shards=2)
        persist.mark_stale(path, "test divergence")
        with pytest.raises(ArtifactStale):
            QueryEngine.open_path(path)
        QueryEngine.open_path(path, allow_stale=True).close()
        engine.save(path, shards=2)  # a fresh save is the repair
        QueryEngine.open_path(path).close()

    def test_worker_error_round_does_not_desync_pipes(self, sharded_artifact,
                                                      workload):
        """A failed round reports once per round and the *next* round
        still returns correct, aligned responses."""
        sub, _ = workload
        with QueryEngine.open_path(sharded_artifact, workers=2) as engine:
            good = canonical_answer(
                SUBGRAPH, engine.query(sub[0], stats=AccessStats()).answer)
            with pytest.raises(EngineError, match="shard worker error"):
                engine._shards.scatter([("bogus-task-kind",)])
            after = canonical_answer(
                SUBGRAPH, engine.query(sub[0], stats=AccessStats()).answer)
            assert after == good

    def test_reload_closes_drained_old_pool(self, sharded_artifact,
                                            workload):
        """Hot reload must not leak the previous engine's worker pool:
        with no batches in flight the old pool closes immediately."""
        from repro.server import QueryService

        sub, _ = workload
        old = QueryEngine.open_path(sharded_artifact, workers=1)
        service = QueryService(old, workers=2)
        try:
            assert service.execute_batch(
                [service.admit(sub[0], SUBGRAPH)])
            service.reload_artifact(sharded_artifact)
            new = service.engine
            assert new is not old
            assert new.exec_workers == 1  # worker count preserved
            with pytest.raises(EngineError, match="closed"):
                old.query(sub[0], stats=AccessStats())
            assert service.execute_batch(
                [service.admit(sub[0], SUBGRAPH)])
        finally:
            service.close()

    def test_reload_across_artifact_layouts(self, tmp_path,
                                            sharded_artifact, imdb_small,
                                            workload):
        """Hot reload stays total across layout transitions: sharded
        (with workers) -> single opens inline; single -> sharded works."""
        from repro.server import QueryService

        graph, schema = imdb_small
        sub, _ = workload
        single = tmp_path / "single"
        QueryEngine.open(graph, schema).save(single)

        service = QueryService(
            QueryEngine.open_path(sharded_artifact, workers=1))
        try:
            service.reload_artifact(single)
            assert service.engine.sharded is False
            assert service.execute_batch(
                [service.admit(sub[0], SUBGRAPH)])
            service.reload_artifact(sharded_artifact)
            assert service.engine.sharded is True
            # The configured worker pool is restored, not silently lost
            # across the single-layout hop.
            assert service.engine.exec_workers == 1
            assert service.execute_batch(
                [service.admit(sub[0], SUBGRAPH)])
        finally:
            service.close()

    def test_inline_open_detects_corruption_without_double_read(
            self, tmp_path, imdb_small):
        """The inline path skips the eager sweep but still detects a
        corrupt shard (loading verifies every shard exactly once)."""
        graph, schema = imdb_small
        path = tmp_path / "art"
        QueryEngine.open(graph, schema).save(path, shards=2)
        target = path / persist.shard_dir_name(1) / persist.INDEX_FILE
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0xFF
        target.write_bytes(bytes(data))
        with pytest.raises(ArtifactError):
            QueryEngine.open_path(path)
        with pytest.raises(ArtifactError):
            QueryEngine.open_path(path, workers=2)
