"""Round-trip tests for graph serialization."""

import io

import pytest

from repro.errors import GraphError
from repro.graph import Graph
from repro.graph.io import (
    from_dict,
    read_json,
    read_tsv,
    to_dict,
    write_json,
    write_tsv,
)


def graphs_equal(a, b) -> bool:
    if set(a.nodes()) != set(b.nodes()):
        return False
    for v in a.nodes():
        if a.label_of(v) != b.label_of(v) or a.value_of(v) != b.value_of(v):
            return False
    return set(a.edges()) == set(b.edges())


class TestTsv:
    def test_round_trip_buffer(self, tiny_graph):
        buffer = io.StringIO()
        write_tsv(tiny_graph, buffer)
        buffer.seek(0)
        assert graphs_equal(read_tsv(buffer), tiny_graph)

    def test_round_trip_file(self, tiny_graph, tmp_path):
        path = tmp_path / "g.tsv"
        write_tsv(tiny_graph, str(path))
        assert graphs_equal(read_tsv(str(path)), tiny_graph)

    def test_comments_and_blank_lines_skipped(self):
        text = "# comment\n\nN\t0\ta\nN\t1\tb\nE\t0\t1\n"
        g = read_tsv(io.StringIO(text))
        assert g.num_nodes == 2 and g.has_edge(0, 1)

    def test_value_json_encoded(self):
        g = Graph()
        g.add_node("x", value={"k": [1, 2]})
        buffer = io.StringIO()
        write_tsv(g, buffer)
        buffer.seek(0)
        assert read_tsv(buffer).value_of(0) == {"k": [1, 2]}

    def test_malformed_node_row(self):
        with pytest.raises(GraphError, match="line 1"):
            read_tsv(io.StringIO("N\t0\n"))

    def test_malformed_edge_row(self):
        with pytest.raises(GraphError, match="line 2"):
            read_tsv(io.StringIO("N\t0\ta\nE\t0\n"))

    def test_unknown_row_kind(self):
        with pytest.raises(GraphError, match="unknown row kind"):
            read_tsv(io.StringIO("X\t0\t1\n"))


class TestJson:
    def test_dict_round_trip(self, tiny_graph):
        assert graphs_equal(from_dict(to_dict(tiny_graph)), tiny_graph)

    def test_file_round_trip(self, tiny_graph, tmp_path):
        path = tmp_path / "g.json"
        write_json(tiny_graph, str(path))
        assert graphs_equal(read_json(str(path)), tiny_graph)

    def test_buffer_round_trip(self, tiny_graph):
        buffer = io.StringIO()
        write_json(tiny_graph, buffer)
        buffer.seek(0)
        assert graphs_equal(read_json(buffer), tiny_graph)

    def test_values_omitted_when_none(self):
        g = Graph()
        g.add_node("a")
        payload = to_dict(g)
        assert "value" not in payload["nodes"][0]

    def test_malformed_document(self):
        with pytest.raises(GraphError):
            from_dict({"nodes": [{"id": 0}]})  # missing label

    def test_malformed_edges(self):
        with pytest.raises(GraphError):
            from_dict({"nodes": [], "edges": None})
