"""Partitioner invariants and sharded-execution equivalence.

The two properties the scatter-gather executor's correctness rests on
(see DESIGN.md "Sharded execution"):

* the partition is an **exact cover** — every node owned by exactly one
  shard, every edge owned by exactly one shard (its source's owner),
  with the full edge multiset preserved across shards;
* per-shard constraint indexes, unioned over shards, equal the global
  index entry for every key — so answers are identical at *any* shard
  count, under both semantics.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AccessConstraint, AccessSchema, Graph, SchemaIndex
from repro.accounting import AccessStats
from repro.constraints.discovery import discover_schema
from repro.core.actualized import SIMULATION, SUBGRAPH
from repro.core.executor import execute_plan, execute_plans_scatter
from repro.core.qplan import generate_plan
from repro.engine.parallel import InlineShardBackend, ShardRuntime
from repro.errors import GraphError, NotEffectivelyBounded
from repro.graph.generators import random_labeled_graph
from repro.graph.partition import (
    GraphSummary,
    assign_nodes,
    build_shard_indexes,
    cross_edge_count,
    partition_graph,
)
from repro.matching.bounded import canonical_answer
from repro.matching.simulation import simulate
from repro.matching.vf2 import find_matches
from repro.pattern.generator import PatternGenerator

_SETTINGS = dict(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])

SHARD_COUNTS = (1, 2, 4, 7)


@st.composite
def random_graph(draw, max_nodes=40, num_labels=4):
    seed = draw(st.integers(0, 10_000))
    num_nodes = draw(st.integers(8, max_nodes))
    num_edges = draw(st.integers(num_nodes, 3 * num_nodes))
    graph = random_labeled_graph(num_nodes, num_labels, num_edges,
                                 seed=seed, value_range=20)
    if graph.num_edges == 0:
        v = list(graph.nodes())
        graph.add_edge(v[0], v[1])
    return graph, seed


def inline_backend(graph, schema, num_shards: int) -> InlineShardBackend:
    """Partition + per-shard index build + inline backend in one step."""
    partition = partition_graph(graph, num_shards)
    indexes = build_shard_indexes(partition, schema)
    runtimes = [ShardRuntime(shard.shard_id, shard.graph, sx, shard.owned)
                for shard, sx in zip(partition.shards, indexes)]
    return InlineShardBackend(runtimes, schema)


# ------------------------------------------------------------- exact cover
@given(data=random_graph(), num_shards=st.sampled_from(SHARD_COUNTS))
@settings(**_SETTINGS)
def test_partition_is_exact_node_cover(data, num_shards):
    graph, _ = data
    partition = partition_graph(graph, num_shards)
    owned_concat = [v for shard in partition.shards for v in shard.owned]
    # Every node in exactly one shard: no duplicates, nothing missing.
    assert len(owned_concat) == len(set(owned_concat))
    assert sorted(owned_concat) == sorted(graph.nodes())
    for shard in partition.shards:
        for v in shard.owned:
            assert partition.owner_of(v) == shard.shard_id


@given(data=random_graph(), num_shards=st.sampled_from(SHARD_COUNTS))
@settings(**_SETTINGS)
def test_partition_preserves_edge_multiset(data, num_shards):
    graph, _ = data
    partition = partition_graph(graph, num_shards)
    owned_edges = sorted(
        edge for shard_id in range(num_shards)
        for edge in partition.owned_edge_list(shard_id))
    assert owned_edges == sorted(graph.edges())
    assert sum(s.owned_edges for s in partition.shards) == graph.num_edges
    assert partition.cross_edges == cross_edge_count(graph,
                                                     partition.assignment)


@given(data=random_graph(), num_shards=st.sampled_from(SHARD_COUNTS))
@settings(**_SETTINGS)
def test_halo_closure_and_label_values(data, num_shards):
    """Every edge incident to an owned node is inside its shard graph,
    with labels and values copied exactly."""
    graph, _ = data
    partition = partition_graph(graph, num_shards)
    for shard in partition.shards:
        for v in shard.owned:
            assert sorted(shard.graph.out_neighbors(v)) == \
                sorted(graph.out_neighbors(v))
            assert sorted(shard.graph.in_neighbors(v)) == \
                sorted(graph.in_neighbors(v))
        for v in shard.graph.nodes():
            assert shard.graph.label_of(v) == graph.label_of(v)
            assert shard.graph.value_of(v) == graph.value_of(v)


@given(data=random_graph(), num_shards=st.sampled_from(SHARD_COUNTS))
@settings(**_SETTINGS)
def test_shard_indexes_union_to_global(data, num_shards):
    """The disjoint union of per-shard index entries equals the global
    index — the identity the scatter merge relies on."""
    graph, _ = data
    schema = discover_schema(graph, type1_max=1000, unit_max=1000)
    global_index = SchemaIndex(graph, schema)
    partition = partition_graph(graph, num_shards)
    shard_indexes = build_shard_indexes(partition, schema)
    for constraint in schema:
        global_entries = global_index.index_for(constraint)._entries
        merged: dict = {}
        for sx in shard_indexes:
            for key in sx.index_for(constraint).keys():
                payload = sx.fetch(constraint, key)
                existing = merged.setdefault(key, [])
                # Disjointness: a target is indexed by its owner only.
                assert not set(existing) & set(payload)
                existing.extend(payload)
        for key, payload in merged.items():
            if not payload and key == ():
                continue  # type-1 keys exist in every shard, even empty
            assert tuple(sorted(payload)) == \
                tuple(sorted(global_entries[key]))
        for key in global_entries:
            assert tuple(sorted(merged.get(key, ()))) == \
                tuple(sorted(global_entries[key]))


# ----------------------------------------------------- answer equivalence
@given(data=random_graph(), num_shards=st.sampled_from(SHARD_COUNTS),
       semantics=st.sampled_from((SUBGRAPH, SIMULATION)))
@settings(**_SETTINGS)
def test_answers_identical_across_shard_counts(data, num_shards, semantics):
    """``Q(G_Q) = Q(G)`` survives partitioning: candidates, G_Q, access
    accounting and canonical answers all match the sequential executor,
    at every shard count, under both semantics."""
    graph, seed = data
    schema = discover_schema(graph, type1_max=1000, unit_max=1000)
    rng = random.Random(seed + 1)
    pattern = PatternGenerator.from_graph(graph, rng=rng).generate(
        num_nodes=rng.randint(2, 4))
    try:
        plan = generate_plan(pattern, schema, semantics)
    except NotEffectivelyBounded:
        return
    sx = SchemaIndex(graph, schema)
    seq_stats = AccessStats()
    sequential = execute_plan(plan, sx, stats=seq_stats)

    backend = inline_backend(graph, schema, num_shards)
    scatter_stats = AccessStats()
    scattered = execute_plans_scatter([plan], backend,
                                      stats_list=[scatter_stats])[0]

    assert scattered.candidates == sequential.candidates
    assert sorted(scattered.gq.nodes()) == sorted(sequential.gq.nodes())
    assert sorted(scattered.gq.edges()) == sorted(sequential.gq.edges())
    assert scatter_stats.as_dict() == seq_stats.as_dict()

    if semantics == SUBGRAPH:
        expected = find_matches(pattern, sequential.gq,
                                candidates=sequential.candidates)
        got = find_matches(pattern, scattered.gq,
                           candidates=scattered.candidates)
    else:
        expected = simulate(pattern, sequential.gq,
                            candidates=sequential.candidates)
        got = simulate(pattern, scattered.gq,
                       candidates=scattered.candidates)
    assert canonical_answer(semantics, got) == \
        canonical_answer(semantics, expected)


# ------------------------------------------------------------- unit tests
class TestAssignment:
    def test_deterministic_across_calls(self):
        graph = random_labeled_graph(30, 3, 60, seed=3)
        assert assign_nodes(graph, 4) == assign_nodes(graph, 4)

    def test_labels_balanced(self):
        graph = Graph()
        for _ in range(40):
            graph.add_node("L")
        counts: dict[int, int] = {}
        for shard in assign_nodes(graph, 4).values():
            counts[shard] = counts.get(shard, 0) + 1
        assert all(count == 10 for count in counts.values())

    def test_invalid_shard_count(self):
        graph = Graph()
        graph.add_node("L")
        with pytest.raises(GraphError):
            partition_graph(graph, 0)

    def test_explicit_assignment_validated(self):
        graph = Graph()
        a = graph.add_node("L")
        graph.add_node("L")
        with pytest.raises(GraphError):
            partition_graph(graph, 2, assignment={a: 0})  # missing node
        with pytest.raises(GraphError):
            partition_graph(graph, 2, assignment={a: 0, a + 1: 9})

    def test_single_shard_is_whole_graph(self):
        graph = random_labeled_graph(20, 3, 40, seed=5)
        partition = partition_graph(graph, 1)
        shard = partition.shards[0]
        assert sorted(shard.owned) == sorted(graph.nodes())
        assert shard.num_halo == 0
        assert partition.cross_edges == 0


class TestGraphSummary:
    def test_size_and_repr(self):
        summary = GraphSummary(num_nodes=10, num_edges=4, num_labels=2)
        assert summary.size == 14
        assert "GraphSummary" in repr(summary)


class TestShardIndexBuild:
    def test_type1_entries_union_to_label_bucket(self):
        graph = Graph()
        movies = [graph.add_node("movie") for _ in range(7)]
        schema = AccessSchema([AccessConstraint((), "movie", 10)])
        partition = partition_graph(graph, 3)
        shard_indexes = build_shard_indexes(partition, schema)
        constraint = next(iter(schema))
        merged: list[int] = []
        for sx in shard_indexes:
            merged.extend(sx.fetch(constraint, ()))
        assert sorted(merged) == sorted(movies)
