"""Tests for constraint discovery (the paper's four discovery routes)."""

import pytest

from repro import AccessConstraint, Graph, SchemaIndex
from repro.constraints.discovery import (
    discover_functional,
    discover_general,
    discover_schema,
    discover_type1,
    discover_unit,
    neighbor_label_bounds,
)
from repro.errors import DiscoveryError
from repro.graph.generators import random_labeled_graph


class TestType1:
    def test_counts(self, tiny_graph):
        found = {c.target: c.bound for c in discover_type1(tiny_graph)}
        assert found == {"movie": 2, "year": 1, "actor": 1, "country": 1}

    def test_max_bound_filters(self, tiny_graph):
        found = discover_type1(tiny_graph, max_bound=1)
        assert all(c.bound <= 1 for c in found)
        assert "movie" not in {c.target for c in found}

    def test_label_restriction(self, tiny_graph):
        found = discover_type1(tiny_graph, labels=["movie"])
        assert [c.target for c in found] == ["movie"]

    def test_absent_label_skipped(self, tiny_graph):
        assert discover_type1(tiny_graph, labels=["nope"]) == []


class TestNeighborBounds:
    def test_bounds(self, tiny_graph):
        bounds = neighbor_label_bounds(tiny_graph)
        assert bounds[("movie", "year")] == 1
        assert bounds[("year", "movie")] == 2   # year 1 has two movies
        assert bounds[("actor", "country")] == 1
        assert bounds[("actor", "movie")] == 1

    def test_counts_both_directions(self):
        g = Graph()
        a = g.add_node("a")
        b1, b2 = g.add_node("b"), g.add_node("b")
        g.add_edge(a, b1)
        g.add_edge(b2, a)  # in-neighbour also counts
        assert neighbor_label_bounds(g)[("a", "b")] == 2


class TestUnit:
    def test_discovered_constraints_hold(self, tiny_graph):
        from repro import AccessSchema
        found = discover_unit(tiny_graph)
        sx = SchemaIndex(tiny_graph, AccessSchema(found))
        assert sx.satisfied()

    def test_max_bound(self, tiny_graph):
        found = discover_unit(tiny_graph, max_bound=1)
        assert ("year",) not in {c.source for c in found
                                 if c.target == "movie"}

    def test_pairs_filter(self, tiny_graph):
        found = discover_unit(tiny_graph, pairs=[("movie", "year")])
        assert len(found) == 1
        assert found[0] == AccessConstraint(("movie",), "year", 1)

    def test_precomputed_reuse(self, tiny_graph):
        bounds = neighbor_label_bounds(tiny_graph)
        assert discover_unit(tiny_graph, precomputed=bounds) == \
            discover_unit(tiny_graph)


class TestFunctional:
    def test_only_bound_one(self, tiny_graph):
        found = discover_functional(tiny_graph)
        assert all(c.bound == 1 for c in found)
        assert AccessConstraint(("movie",), "year", 1) in found
        assert AccessConstraint(("actor",), "country", 1) in found


class TestGeneral:
    def test_pair_shape(self, imdb_small):
        graph, _ = imdb_small
        c = discover_general(graph, ("year", "award"), "movie")
        assert c is not None
        assert c.bound <= 4  # generator enforces C1

    def test_observed_bound_is_tight(self, tiny_graph):
        c = discover_general(tiny_graph, ("year",), "movie")
        assert c.bound == 2

    def test_none_when_absent(self, tiny_graph):
        assert discover_general(tiny_graph, ("year",), "nothing") is None

    def test_none_when_over_cap(self, tiny_graph):
        assert discover_general(tiny_graph, ("year",), "movie", max_bound=1) is None

    def test_empty_source_rejected(self, tiny_graph):
        with pytest.raises(DiscoveryError):
            discover_general(tiny_graph, (), "movie")


class TestDiscoverSchema:
    def test_schema_is_satisfied(self):
        from repro import AccessSchema
        graph = random_labeled_graph(200, 8, 600, seed=5)
        schema = discover_schema(graph, type1_max=100, unit_max=50)
        assert SchemaIndex(graph, schema).satisfied()

    def test_general_shapes_included(self, imdb_small):
        graph, _ = imdb_small
        schema = discover_schema(graph, type1_max=200, unit_max=5,
                                 general_shapes=[(("year", "award"), "movie")])
        assert any(c.source == ("award", "year") and c.target == "movie"
                   for c in schema)

    def test_deterministic(self):
        graph = random_labeled_graph(100, 5, 300, seed=6)
        a = discover_schema(graph)
        b = discover_schema(graph)
        assert list(a) == list(b)
