"""The remote shard backend: wire failures, handshakes, and identity.

Covers the tentpole acceptance criteria of the distributed-serving PR:

* byte-identical answers / ``G_Q`` / candidates / ``AccessStats``
  against the inline backend at shard counts {1, 2, 4} under both
  semantics (hypothesis property test), including after an injected
  shard restart mid-run;
* wire-level failure modes — truncated frames, handshake version and
  checksum mismatches, mid-wave shard death (typed error, no hang, no
  partial answer), and retry-then-succeed against a flaky-once shard;
* :class:`~repro.errors.ShardUnavailable` surfacing through the query
  server as the same typed error;
* the ``repro.connect`` entry point and its ``SessionConfig`` surface.
"""

from __future__ import annotations

import random
import socket
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    AccessConstraint,
    AccessStats,
    EngineError,
    QueryEngine,
    SessionConfig,
    ShardHandshakeMismatch,
    ShardUnavailable,
    connect,
)
from repro.core.actualized import SIMULATION, SUBGRAPH
from repro.core.ebchk import is_effectively_bounded
from repro.matching.bounded import canonical_answer
from repro.server import protocol
from repro.server.shardserver import ShardServer, resolve_shard_artifact

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

_SETTINGS = dict(max_examples=10, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow,
                                        HealthCheck.function_scoped_fixture])

SHARD_COUNTS = (1, 2, 4)


# --------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def workload(imdb_small):
    from repro.pattern.generator import PatternGenerator

    graph, schema = imdb_small
    generator = PatternGenerator.from_graph(graph, rng=random.Random(11),
                                            schema=schema)
    pool = generator.generate_many(60)
    sub = [q for q in pool
           if is_effectively_bounded(q, schema, SUBGRAPH).bounded][:3]
    sim = [q for q in pool
           if is_effectively_bounded(q, schema, SIMULATION).bounded][:3]
    assert sub and sim
    return sub, sim


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory, imdb_small, workload):
    """One sharded artifact per shard count in SHARD_COUNTS."""
    graph, schema = imdb_small
    sub, sim = workload
    engine = connect((graph, schema))
    for q in sub:
        engine.prepare(q, SUBGRAPH)
    for q in sim:
        engine.prepare(q, SIMULATION)
    root = tmp_path_factory.mktemp("remote")
    paths = {}
    for shards in SHARD_COUNTS:
        path = root / f"artifact-{shards}"
        engine.save(path, shards=shards)
        paths[shards] = path
    return paths


@pytest.fixture(scope="module")
def fleets(artifacts):
    """A running shard fleet per shard count; yields {shards: addrs}."""
    servers = []
    addrs = {}
    for shards, path in artifacts.items():
        fleet = [ShardServer(path / f"shard-{i:04d}").start()
                 for i in range(shards)]
        servers.extend(fleet)
        addrs[shards] = [server.address for server in fleet]
    yield addrs
    for server in servers:
        server.stop()


def fingerprint(engine, query, semantics, refresh=False):
    run = engine.query(query, semantics, stats=AccessStats(),
                       refresh=refresh)
    ex = run.execution
    return (canonical_answer(semantics, run.answer),
            sorted(ex.gq.nodes()), sorted(ex.gq.edges()),
            sorted((u, tuple(sorted(c))) for u, c in ex.candidates.items()),
            (ex.stats.nodes_fetched, ex.stats.edges_checked,
             ex.stats.index_fetches, ex.stats.distinct_nodes))


# ------------------------------------------------- fake servers (failure rigs)
def fake_shard_server(handler):
    """A raw TCP acceptor running ``handler(conn)`` per connection;
    returns ``(addr, close)``."""
    lsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    lsock.bind(("127.0.0.1", 0))
    lsock.listen(8)
    port = lsock.getsockname()[1]
    closed = threading.Event()

    def loop():
        while not closed.is_set():
            try:
                conn, _ = lsock.accept()
            except OSError:
                return
            threading.Thread(target=handler, args=(conn,),
                             daemon=True).start()

    threading.Thread(target=loop, daemon=True).start()

    def close():
        closed.set()
        lsock.close()

    return f"127.0.0.1:{port}", close


def _read_line(conn):
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = conn.recv(65536)
        if not chunk:
            raise EOFError
        buf += chunk
    return buf


def wrong_protocol_handler(conn):
    """Answers the hello with an alien protocol version."""
    import json

    try:
        doc = json.loads(_read_line(conn))
        conn.sendall(protocol.encode(
            {"id": doc.get("id"), "ok": True, "op": "hello",
             "protocol": 999}))
    except (OSError, EOFError, ValueError):
        pass
    conn.close()


def make_truncating_handler(hello_fields):
    """Handshakes truthfully, then truncates every later response
    mid-frame — the wire-corruption rig."""
    import json

    def handler(conn):
        try:
            while True:
                doc = json.loads(_read_line(conn))
                if doc.get("op") == "hello":
                    conn.sendall(protocol.encode(
                        {"id": doc.get("id"), "ok": True, **hello_fields}))
                else:
                    conn.sendall(b'{"id": 99, "ok": true, "respon')
                    conn.close()
                    return
        except (OSError, EOFError, ValueError):
            conn.close()

    return handler


def hello_fields_for(path, shard_id=0):
    """The truthful hello of ``path``'s shard — what a fake server must
    claim to get past the handshake."""
    server = ShardServer(path / f"shard-{shard_id:04d}")
    return {"op": "hello", "protocol": protocol.PROTOCOL_VERSION,
            "shard_id": server.shard_id,
            "format_version": server.format_version,
            "schema_version": server.schema_version,
            "manifest_sha256": server.manifest_sha256,
            "owned_labels": server.runtime.owned_labels()}


class FlakyOnceShardServer(ShardServer):
    """Severs every connection on the first scatter, then behaves."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.tripped = False

    def dispatch(self, doc):
        if doc.get("op") == "scatter" and not self.tripped:
            self.tripped = True
            for conn in list(self._server.active_connections):
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
        return super().dispatch(doc)


# ------------------------------------------------------------ identity tests
class TestRemoteIdentity:
    @given(shards=st.sampled_from(SHARD_COUNTS),
           semantics=st.sampled_from([SUBGRAPH, SIMULATION]),
           wire_format=st.sampled_from(["auto", "json"]),
           pick=st.integers(min_value=0, max_value=2))
    @settings(**_SETTINGS)
    def test_identical_to_inline_at_every_shard_count(
            self, artifacts, fleets, workload, shards, semantics,
            wire_format, pick):
        sub, sim = workload
        query = (sub if semantics == SUBGRAPH else sim)[pick % len(sub)]
        with connect(artifacts[shards], strategy="scatter") as inline:
            expected = fingerprint(inline, query, semantics)
        with connect(artifacts[shards], backend="remote",
                     shard_addrs=fleets[shards],
                     wire_format=wire_format) as remote:
            assert fingerprint(remote, query, semantics) == expected
            codec = remote._shards.wire_codec
            if wire_format == "json" or not protocol.binary_supported():
                assert codec == protocol.CODEC_JSON
            else:
                assert codec == protocol.CODEC_BINARY

    def test_identical_after_injected_restart_midrun(self, artifacts,
                                                     workload, imdb_small):
        path = artifacts[2]
        sub, sim = workload
        servers = [ShardServer(path / f"shard-{i:04d}").start()
                   for i in range(2)]
        try:
            with connect(path, strategy="scatter") as inline:
                # The restart must also survive an online extension: the
                # restarted server warm-starts from the artifact, which
                # predates the extension, so the backend replays it.
                added = AccessConstraint(("actor",), "movie", 64)
                inline.extend_schema([added])
                expected = [fingerprint(inline, q, SUBGRAPH) for q in sub] \
                    + [fingerprint(inline, q, SIMULATION) for q in sim]
            remote = connect(path, backend="remote",
                             shard_addrs=[s.address for s in servers])
            try:
                remote.extend_schema([added])
                before = [fingerprint(remote, q, SUBGRAPH) for q in sub]
                port = servers[1].port
                servers[1].stop()
                servers[1] = ShardServer(path / "shard-0001",
                                         port=port).start()
                # refresh=True forces real re-execution over the fleet —
                # the memoized answers would mask a broken reconnect.
                after = [fingerprint(remote, q, SUBGRAPH, refresh=True)
                         for q in sub] \
                    + [fingerprint(remote, q, SIMULATION, refresh=True)
                       for q in sim]
                assert before == expected[:len(sub)]
                assert after == expected
                assert remote._shards.reconnects >= 1
            finally:
                remote.close()
        finally:
            for server in servers:
                server.stop()


# ------------------------------------------------------------- failure modes
class TestWireFailures:
    def test_version_mismatch_handshake(self, artifacts):
        addr, close = fake_shard_server(wrong_protocol_handler)
        try:
            with pytest.raises(ShardHandshakeMismatch) as err:
                connect(artifacts[1], backend="remote", shard_addrs=[addr],
                        retries=0, connect_timeout=2.0)
            assert err.value.found == 999
            assert err.value.expected == protocol.PROTOCOL_VERSION
        finally:
            close()

    def test_checksum_mismatch_handshake(self, tmp_path, artifacts):
        # A fleet serving a *different* compile of the same graph family
        # must be rejected at connect, not trusted mid-wave.
        from repro.graph.generators import imdb_like

        graph, schema = imdb_like(scale=0.02, seed=8)  # different seed
        other = tmp_path / "other"
        connect((graph, schema)).save(other, shards=1)
        server = ShardServer(other / "shard-0000").start()
        try:
            with pytest.raises(ShardHandshakeMismatch):
                connect(artifacts[1], backend="remote",
                        shard_addrs=[server.address], retries=0)
        finally:
            server.stop()

    def test_truncated_handshake_frame(self, artifacts):
        def handler(conn):
            try:
                _read_line(conn)
                conn.sendall(b'{"id": 1, "ok": tr')  # mid-frame death
            except (OSError, EOFError):
                pass
            conn.close()

        addr, close = fake_shard_server(handler)
        try:
            with pytest.raises(ShardUnavailable) as err:
                connect(artifacts[1], backend="remote", shard_addrs=[addr],
                        retries=0, connect_timeout=1.0)
            assert err.value.addr == addr
        finally:
            close()

    def test_truncated_scatter_frames_exhaust_retries(self, artifacts,
                                                      workload):
        sub, _ = workload
        handler = make_truncating_handler(hello_fields_for(artifacts[1]))
        addr, close = fake_shard_server(handler)
        try:
            engine = connect(artifacts[1], backend="remote",
                             shard_addrs=[addr], retries=1,
                             retry_backoff_s=0.01, request_timeout=5.0)
            try:
                start = time.monotonic()
                with pytest.raises(ShardUnavailable) as err:
                    engine.query(sub[0], SUBGRAPH)
                assert time.monotonic() - start < 10.0  # no hang
                assert err.value.attempts == 2  # retries + 1
            finally:
                engine.close()
        finally:
            close()

    def test_mid_wave_shard_death_is_typed_not_partial(self, artifacts,
                                                       workload):
        sub, _ = workload
        path = artifacts[2]
        servers = [ShardServer(path / f"shard-{i:04d}").start()
                   for i in range(2)]
        engine = connect(path, backend="remote",
                         shard_addrs=[s.address for s in servers],
                         retries=1, retry_backoff_s=0.01)
        try:
            assert engine.query(sub[0], SUBGRAPH).answer is not None
            servers[1].stop()  # permanent death, port not rebound
            start = time.monotonic()
            with pytest.raises(ShardUnavailable) as err:
                engine.query(sub[0], SUBGRAPH, refresh=True)
            assert time.monotonic() - start < 30.0  # bounded, no hang
            assert err.value.shard_id == 1 or err.value.addr is not None
        finally:
            engine.close()
            for server in servers:
                server.stop()

    def test_flaky_once_shard_retries_then_succeeds(self, artifacts,
                                                    workload):
        sub, sim = workload
        path = artifacts[2]
        servers = [FlakyOnceShardServer(path / "shard-0000").start(),
                   ShardServer(path / "shard-0001").start()]
        try:
            with connect(path, strategy="scatter") as inline:
                expected = fingerprint(inline, sub[0], SUBGRAPH)
            engine = connect(path, backend="remote",
                             shard_addrs=[s.address for s in servers],
                             retries=2, retry_backoff_s=0.01)
            try:
                assert fingerprint(engine, sub[0], SUBGRAPH) == expected
                assert servers[0].tripped
                assert engine._shards.reconnects >= 1
            finally:
                engine.close()
        finally:
            for server in servers:
                server.stop()

    def test_shard_unavailable_surfaces_through_query_server(
            self, artifacts, workload):
        from repro.pattern.dsl import format_pattern
        from repro.server import QueryService, ServeClient, ServerThread

        sub, _ = workload
        path = artifacts[2]
        servers = [ShardServer(path / f"shard-{i:04d}").start()
                   for i in range(2)]
        engine = connect(path, backend="remote",
                         shard_addrs=[s.address for s in servers],
                         retries=0, retry_backoff_s=0.01)
        service = QueryService(engine, workers=1)
        try:
            with ServerThread(service) as handle:
                with ServeClient(handle.host, handle.port) as client:
                    assert client.query(format_pattern(sub[0])) is not None
                    for server in servers:
                        server.stop()
                    with pytest.raises(ShardUnavailable):
                        client.query(format_pattern(sub[1]))
        finally:
            service.close()
            for server in servers:
                server.stop()


# ----------------------------------------------------------- entry point
class TestConnectSurface:
    def test_connect_rejects_unknown_source(self):
        with pytest.raises(EngineError):
            connect(42)

    def test_connect_rejects_shards_on_memory_source(self, imdb_small):
        with pytest.raises(EngineError):
            connect(imdb_small, shard_addrs=["127.0.0.1:1"])

    def test_session_config_typo_guard(self):
        with pytest.raises(EngineError):
            SessionConfig().replace(worker=3)

    def test_legacy_shims_delegate(self, imdb_small, artifacts):
        graph, schema = imdb_small
        with QueryEngine.open(graph, schema) as legacy, \
                connect((graph, schema)) as current:
            assert legacy.schema.positions() == current.schema.positions()
        with QueryEngine.open_path(artifacts[1]) as legacy, \
                connect(artifacts[1]) as current:
            assert legacy.schema.positions() == current.schema.positions()
        assert "connect" in QueryEngine.open.__doc__
        assert "connect" in QueryEngine.open_path.__doc__
        assert "connect" in QueryEngine.from_shards.__doc__

    def test_remote_requires_sharded_artifact_and_addrs(self, artifacts,
                                                        tmp_path,
                                                        imdb_small):
        with pytest.raises(EngineError):
            connect(artifacts[1], backend="remote")  # no addrs
        with pytest.raises(EngineError):
            connect(artifacts[1], shard_addrs=["127.0.0.1:1"],
                    backend="inline")  # addrs without remote
        graph, schema = imdb_small
        single = tmp_path / "single"
        connect((graph, schema)).save(single)
        with pytest.raises(EngineError):
            connect(single, backend="remote",
                    shard_addrs=["127.0.0.1:1"])  # single layout

    def test_resolve_shard_artifact(self, artifacts):
        root, shard_id = resolve_shard_artifact(artifacts[2] / "shard-0001")
        assert (root, shard_id) == (artifacts[2], 1)
        with pytest.raises(EngineError):
            resolve_shard_artifact(artifacts[2])  # no shard-NNNN suffix
