"""Tests for access accounting."""

from repro.accounting import AccessStats


class TestAccessStats:
    def test_initial_zero(self):
        stats = AccessStats()
        assert stats.nodes_fetched == 0
        assert stats.edges_checked == 0
        assert stats.total_accessed == 0
        assert stats.distinct_nodes == 0

    def test_record_fetch_counts_multiplicity(self):
        stats = AccessStats()
        stats.record_fetch([1, 2, 3])
        stats.record_fetch([2, 3, 4])
        assert stats.nodes_fetched == 6       # with multiplicity
        assert stats.distinct_nodes == 4      # deduplicated
        assert stats.index_fetches == 2

    def test_record_edge_checks(self):
        stats = AccessStats()
        stats.record_edge_checks(5)
        assert stats.edges_checked == 5
        assert stats.nodes_fetched == 0

    def test_record_edge_fetch(self):
        """Edge-phase fetches count as edge examinations, not node
        fetches (the paper's Example 1 accounting)."""
        stats = AccessStats()
        stats.record_edge_fetch([1, 2])
        assert stats.edges_checked == 2
        assert stats.nodes_fetched == 0
        assert stats.index_fetches == 1
        assert stats.distinct_nodes == 2

    def test_total(self):
        stats = AccessStats()
        stats.record_fetch([1])
        stats.record_edge_checks(3)
        assert stats.total_accessed == 4

    def test_merge(self):
        a = AccessStats()
        a.record_fetch([1, 2])
        b = AccessStats()
        b.record_fetch([2, 3])
        b.record_edge_checks(1)
        a.merge(b)
        assert a.nodes_fetched == 4
        assert a.distinct_nodes == 3
        assert a.edges_checked == 1
        assert a.index_fetches == 2

    def test_as_dict_keys(self):
        stats = AccessStats()
        stats.record_fetch([1])
        payload = stats.as_dict()
        assert payload["nodes_fetched"] == 1
        assert payload["total_accessed"] == 1
        assert set(payload) == {"nodes_fetched", "edges_checked",
                                "index_fetches", "distinct_nodes",
                                "total_accessed", "plan_cache_hits",
                                "plan_cache_misses"}
