"""Tests for access constraints and schemas."""

import io

import pytest

from repro import AccessConstraint, AccessSchema
from repro.errors import SchemaError


class TestAccessConstraint:
    def test_construction(self):
        c = AccessConstraint(("year", "award"), "movie", 4)
        assert c.source == ("award", "year")  # canonical (sorted) order
        assert c.target == "movie"
        assert c.bound == 4

    def test_source_deduplicated(self):
        c = AccessConstraint(("a", "a", "b"), "x", 1)
        assert c.source == ("a", "b")

    def test_shapes(self):
        assert AccessConstraint((), "l", 3).is_type1
        assert AccessConstraint(("a",), "l", 3).is_type2
        general = AccessConstraint(("a", "b"), "l", 3)
        assert not general.is_type1 and not general.is_type2
        assert general.arity == 2

    def test_length(self):
        assert AccessConstraint((), "l", 3).length == 1
        assert AccessConstraint(("a", "b"), "l", 3).length == 3

    def test_equality_and_hash(self):
        a = AccessConstraint(("x", "y"), "l", 2)
        b = AccessConstraint(("y", "x"), "l", 2)
        assert a == b
        assert hash(a) == hash(b)
        assert a != AccessConstraint(("x", "y"), "l", 3)

    def test_str(self):
        assert str(AccessConstraint((), "country", 196)) == "∅ -> (country, 196)"
        assert str(AccessConstraint(("movie",), "actor", 30)) == \
            "movie -> (actor, 30)"

    @pytest.mark.parametrize("source,target,bound", [
        ((), "", 3),
        ((), "l", -1),
        ((), "l", 1.5),
        ((), "l", True),
        (("",), "l", 3),
        ((3,), "l", 3),
    ])
    def test_invalid_inputs(self, source, target, bound):
        with pytest.raises(SchemaError):
            AccessConstraint(source, target, bound)

    def test_dict_round_trip(self):
        c = AccessConstraint(("year", "award"), "movie", 4)
        assert AccessConstraint.from_dict(c.to_dict()) == c

    def test_from_dict_malformed(self):
        with pytest.raises(SchemaError):
            AccessConstraint.from_dict({"target": "l"})


class TestAccessSchema:
    @pytest.fixture()
    def schema(self):
        return AccessSchema([
            AccessConstraint((), "year", 135),
            AccessConstraint((), "award", 24),
            AccessConstraint(("movie",), "year", 1),
            AccessConstraint(("year", "award"), "movie", 4),
        ])

    def test_sizes(self, schema):
        assert len(schema) == 4            # ||A||
        assert schema.total_length == 1 + 1 + 2 + 3  # |A|

    def test_dedup_on_add(self, schema):
        assert not schema.add(AccessConstraint((), "year", 135))
        assert len(schema) == 4
        assert schema.add(AccessConstraint((), "year", 100))
        assert len(schema) == 5

    def test_by_target(self, schema):
        assert len(schema.by_target("year")) == 2  # ∅->year and movie->year
        assert len(schema.by_target("movie")) == 1
        assert schema.by_target("nope") == []

    def test_type1_for_picks_tightest(self, schema):
        schema.add(AccessConstraint((), "year", 100))
        best = schema.type1_for("year")
        assert best.bound == 100
        assert schema.type1_for("movie") is None

    def test_contains(self, schema):
        assert AccessConstraint((), "year", 135) in schema
        assert AccessConstraint((), "year", 1) not in schema

    def test_union(self, schema):
        other = AccessSchema([AccessConstraint((), "country", 196),
                              AccessConstraint((), "year", 135)])
        merged = schema.union(other)
        assert len(merged) == 5
        assert len(schema) == 4  # original untouched

    def test_restricted_to(self, schema):
        small = schema.restricted_to(2)
        assert len(small) == 2
        assert list(small) == list(schema)[:2]

    def test_extend_counts_new(self, schema):
        added = schema.extend([AccessConstraint((), "x", 1),
                               AccessConstraint((), "year", 135)])
        assert added == 1

    def test_targets(self, schema):
        assert schema.targets() == {"year", "award", "movie"}

    def test_rejects_non_constraint(self, schema):
        with pytest.raises(SchemaError):
            schema.add("not a constraint")

    def test_json_round_trip(self, schema, tmp_path):
        path = tmp_path / "schema.json"
        schema.save(str(path))
        loaded = AccessSchema.load(str(path))
        assert list(loaded) == list(schema)

    def test_json_buffer_round_trip(self, schema):
        buffer = io.StringIO()
        schema.save(buffer)
        buffer.seek(0)
        assert list(AccessSchema.load(buffer)) == list(schema)

    def test_from_dict_malformed(self):
        with pytest.raises(SchemaError):
            AccessSchema.from_dict({"nope": []})

    def test_str(self, schema):
        assert "year" in str(schema)
