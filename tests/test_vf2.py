"""Tests for the VF2-style subgraph-isomorphism matcher."""

import pytest

from repro import Graph, Pattern, Predicate, count_matches, find_matches
from repro.errors import MatchTimeout, PatternError
from repro.matching.vf2 import iter_matches, match_exists


@pytest.fixture()
def triangle_graph():
    """A directed triangle plus a pendant."""
    g = Graph()
    a = g.add_node("X")
    b = g.add_node("X")
    c = g.add_node("X")
    d = g.add_node("Y")
    g.add_edge(a, b)
    g.add_edge(b, c)
    g.add_edge(c, a)
    g.add_edge(a, d)
    return g


def triangle_pattern():
    p = Pattern()
    x1 = p.add_node("X")
    x2 = p.add_node("X")
    x3 = p.add_node("X")
    p.add_edge(x1, x2)
    p.add_edge(x2, x3)
    p.add_edge(x3, x1)
    return p


class TestBasics:
    def test_triangle_has_three_rotations(self, triangle_graph):
        matches = find_matches(triangle_pattern(), triangle_graph)
        assert len(matches) == 3  # one per rotation (direction fixes chirality)

    def test_matches_are_injective(self, triangle_graph):
        for match in find_matches(triangle_pattern(), triangle_graph):
            assert len(set(match.values())) == len(match)

    def test_edges_preserved(self, triangle_graph):
        p = triangle_pattern()
        for match in find_matches(p, triangle_graph):
            for (u, v) in p.edges():
                assert triangle_graph.has_edge(match[u], match[v])

    def test_label_mismatch_no_match(self, triangle_graph):
        p = Pattern()
        z = p.add_node("Z")
        assert find_matches(p, triangle_graph) == []

    def test_single_node_pattern(self, triangle_graph):
        p = Pattern()
        p.add_node("Y")
        assert len(find_matches(p, triangle_graph)) == 1

    def test_empty_pattern_rejected(self, triangle_graph):
        with pytest.raises(PatternError):
            find_matches(Pattern(), triangle_graph)

    def test_non_induced_semantics(self):
        """Extra data edges between matched nodes must not block a match."""
        g = Graph()
        a = g.add_node("A")
        b = g.add_node("B")
        g.add_edge(a, b)
        g.add_edge(b, a)          # extra edge
        p = Pattern()
        pa = p.add_node("A")
        pb = p.add_node("B")
        p.add_edge(pa, pb)        # pattern only requires one direction
        assert len(find_matches(p, g)) == 1

    def test_direction_matters(self):
        g = Graph()
        a = g.add_node("A")
        b = g.add_node("B")
        g.add_edge(a, b)
        p = Pattern()
        pa = p.add_node("A")
        pb = p.add_node("B")
        p.add_edge(pb, pa)  # reversed
        assert find_matches(p, g) == []

    def test_predicates_filter(self):
        g = Graph()
        y1 = g.add_node("year", value=2010)
        y2 = g.add_node("year", value=2012)
        p = Pattern()
        p.add_node("year", predicate=Predicate.of((">=", 2011)))
        matches = find_matches(p, g)
        assert [m[0] for m in matches] == [y2]

    def test_disconnected_pattern(self):
        g = Graph()
        a = g.add_node("A")
        b = g.add_node("B")
        p = Pattern()
        p.add_node("A")
        p.add_node("B")
        assert len(find_matches(p, g)) == 1

    def test_same_label_nodes_distinct(self):
        """Two pattern nodes with one data candidate cannot both map."""
        g = Graph()
        a = g.add_node("A")
        b = g.add_node("A")
        g.add_edge(a, b)
        p = Pattern()
        p1 = p.add_node("A")
        p2 = p.add_node("A")
        p3 = p.add_node("A")
        p.add_edge(p1, p2)
        p.add_edge(p2, p3)
        assert find_matches(p, g) == []

    def test_self_loop(self):
        g = Graph()
        a = g.add_node("A")
        g.add_edge(a, a)
        b = g.add_node("A")
        p = Pattern()
        pa = p.add_node("A")
        p.add_edge(pa, pa)
        matches = find_matches(p, g)
        assert [m[pa] for m in matches] == [a]


class TestControls:
    def test_limit(self, triangle_graph):
        assert len(find_matches(triangle_pattern(), triangle_graph, limit=2)) == 2

    def test_match_exists(self, triangle_graph):
        assert match_exists(triangle_pattern(), triangle_graph)
        p = Pattern()
        p.add_node("Z")
        assert not match_exists(p, triangle_graph)

    def test_count(self, triangle_graph):
        assert count_matches(triangle_pattern(), triangle_graph) == 3

    def test_lazy_iteration(self, triangle_graph):
        iterator = iter_matches(triangle_pattern(), triangle_graph)
        first = next(iterator)
        assert isinstance(first, dict)

    def test_candidate_restriction(self, triangle_graph):
        p = Pattern()
        x = p.add_node("X")
        matches = find_matches(p, triangle_graph, candidates={x: {0, 1}})
        assert {m[x] for m in matches} == {0, 1}

    def test_candidate_restriction_checks_labels(self, triangle_graph):
        p = Pattern()
        x = p.add_node("X")
        # Node 3 has label Y: silently filtered even if offered.
        matches = find_matches(p, triangle_graph, candidates={x: {0, 3}})
        assert {m[x] for m in matches} == {0}

    def test_timeout_raises(self):
        """A dense same-label graph blows up combinatorially."""
        g = Graph()
        nodes = [g.add_node("N") for _ in range(40)]
        for i in nodes:
            for j in nodes:
                if i != j:
                    g.add_edge(i, j)
        p = Pattern()
        ps = [p.add_node("N") for _ in range(7)]
        for i in range(6):
            p.add_edge(ps[i], ps[i + 1])
        with pytest.raises(MatchTimeout):
            find_matches(p, g, timeout=0.05)


class TestAgainstBruteForce:
    def test_matches_equal_brute_force(self):
        """Cross-check VF2 against naive enumeration on random graphs."""
        import random
        from itertools import permutations

        from repro.graph.generators import random_labeled_graph
        rng = random.Random(17)
        for trial in range(5):
            g = random_labeled_graph(10, 2, 18, seed=trial, value_range=None)
            p = Pattern()
            n1 = p.add_node(f"L{rng.randrange(2)}")
            n2 = p.add_node(f"L{rng.randrange(2)}")
            n3 = p.add_node(f"L{rng.randrange(2)}")
            p.add_edge(n1, n2)
            p.add_edge(n2, n3)

            expected = set()
            for combo in permutations(g.nodes(), 3):
                mapping = dict(zip((n1, n2, n3), combo))
                if all(g.label_of(mapping[u]) == p.label_of(u) for u in mapping) \
                        and all(g.has_edge(mapping[a], mapping[b])
                                for a, b in p.edges()):
                    expected.add(frozenset(mapping.items()))
            actual = {frozenset(m.items()) for m in find_matches(p, g)}
            assert actual == expected
