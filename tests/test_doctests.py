"""Run the executable examples embedded in module docstrings."""

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro.constraints.catalog",
    "repro.constraints.index",
    "repro.constraints.schema",
    "repro.core.ebchk",
    "repro.core.incremental",
    "repro.graph.frozen",
    "repro.graph.graph",
    "repro.pattern.pattern",
    "repro.pattern.predicates",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_module_doctests(name):
    module = importlib.import_module(name)
    result = doctest.testmod(module)
    assert result.failed == 0, f"{result.failed} doctest failures in {name}"
    assert result.attempted > 0, f"no doctests found in {name}"
