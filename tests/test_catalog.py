"""Tests for the versioned schema catalog (repro.constraints.catalog)
and the plan-cache verdict keying it drives in the engine."""

from __future__ import annotations

import pytest

from repro import AccessConstraint, AccessSchema, Graph, QueryEngine
from repro.constraints.catalog import SchemaCatalog, SchemaGeneration
from repro.engine import PlanCache
from repro.errors import NotEffectivelyBounded, SchemaError
from repro.pattern import parse_pattern

MY_QUERY = "m: movie; y: year; m -> y"


def c1(label="year", bound=10):
    return AccessConstraint((), label, bound)


def c2(src="year", target="movie", bound=4):
    return AccessConstraint((src,), target, bound)


# ----------------------------------------------------------- catalog unit
class TestSchemaCatalog:
    def test_starts_at_generation_zero(self):
        schema = AccessSchema([c1()])
        catalog = SchemaCatalog(schema)
        assert catalog.version == 0
        assert catalog.current is schema
        assert len(catalog.generations) == 1
        assert catalog.generations[0].size == 1

    def test_extend_appends_in_place_and_bumps(self):
        schema = AccessSchema([c1()])
        catalog = SchemaCatalog(schema)
        generation = catalog.extend([c2()], provenance={"origin": "t",
                                                        "m": 4})
        assert generation.version == 1
        assert catalog.version == 1
        # The schema object grew in place, preserving positions.
        assert catalog.current is schema
        assert list(schema) == [c1(), c2()]
        assert schema.at(1) == c2()
        assert generation.provenance == {"origin": "t", "m": 4}

    def test_duplicate_extension_is_a_noop(self):
        catalog = SchemaCatalog(AccessSchema([c1()]))
        assert catalog.extend([c1()]) is None
        assert catalog.version == 0

    def test_partial_duplicates_add_only_new(self):
        catalog = SchemaCatalog(AccessSchema([c1()]))
        generation = catalog.extend([c1(), c2()])
        assert generation.added == (c2(),)
        assert catalog.version == 1

    def test_versions_monotonic_across_extensions(self):
        catalog = SchemaCatalog(AccessSchema([]))
        for i, constraint in enumerate([c1(), c2(), c2("actor", "movie", 9)]):
            assert catalog.extend([constraint]).version == i + 1
        assert catalog.version == 3
        assert catalog.added_since(1) == [c2(), c2("actor", "movie", 9)]

    def test_roundtrip(self):
        schema = AccessSchema([c1()])
        catalog = SchemaCatalog(schema)
        catalog.extend([c2()], provenance={"origin": "rescue", "m": 7})
        doc = catalog.to_dict()
        rebuilt = SchemaCatalog.from_dict(doc, AccessSchema(list(schema)))
        assert rebuilt.version == 1
        assert rebuilt.generations[1].added == (c2(),)
        assert rebuilt.generations[1].provenance["m"] == 7

    def test_from_dict_rejects_inconsistent_sizes(self):
        catalog = SchemaCatalog(AccessSchema([c1()]))
        doc = catalog.to_dict()
        with pytest.raises(SchemaError):
            # Schema with an extra constraint the generations don't know.
            SchemaCatalog.from_dict(doc, AccessSchema([c1(), c2()]))

    def test_from_dict_rejects_version_gap(self):
        doc = {"version": 2,
               "generations": [SchemaGeneration(0, (), 1).to_dict()]}
        with pytest.raises(SchemaError):
            SchemaCatalog.from_dict(doc, AccessSchema([c1()]))

    def test_requires_access_schema(self):
        with pytest.raises(SchemaError):
            SchemaCatalog([c1()])


# -------------------------------------------- engine verdict keying
class TestCatalogCacheKeying:
    def _engine(self, **kwargs):
        g = Graph()
        y = g.add_node("year", value=2000)
        m = g.add_node("movie")
        g.add_edge(m, y)
        return QueryEngine.open(g, AccessSchema([c1()]), **kwargs), g

    def test_engine_wraps_schema_in_catalog(self):
        engine, _ = self._engine()
        assert engine.schema_version == 0
        assert engine.catalog.current is engine.schema

    def test_extend_invalidates_negative_verdict(self):
        engine, _ = self._engine()
        q = parse_pattern(MY_QUERY)
        with pytest.raises(NotEffectivelyBounded):
            engine.query(q)
        engine.extend_schema([c2()], provenance={"origin": "test"})
        assert engine.schema_version == 1
        # The cached refusal is keyed to generation 0: it must re-check,
        # not serve the stale negative verdict.
        assert len(engine.query(q).answer) == 1

    def test_positive_plans_survive_extension(self):
        engine, _ = self._engine()
        engine.extend_schema([c2()])
        q = parse_pattern(MY_QUERY)
        engine.query(q)
        misses = engine.stats.plan_cache_misses
        engine.extend_schema([c2("actor", "movie", 9)])
        engine.query(q)
        # A plan compiled under A is correct under A ∪ A': cache hit.
        assert engine.stats.plan_cache_misses == misses
        assert engine.stats.plan_cache_hits >= 1

    def test_shared_cache_across_catalog_generations(self):
        g = Graph()
        y = g.add_node("year", value=2000)
        m = g.add_node("movie")
        g.add_edge(m, y)
        schema = AccessSchema([c1()])
        cache = PlanCache()
        e1 = QueryEngine.open(g, schema, plan_cache=cache)
        q = parse_pattern(MY_QUERY)
        with pytest.raises(NotEffectivelyBounded):
            e1.query(q)
        # A second engine over the same (grown) schema object must not
        # reuse the generation-0 refusal.
        e1.extend_schema([c2()])
        e2 = QueryEngine.open(g, schema, plan_cache=cache)
        assert len(e2.query(q).answer) == 1

    def test_extend_empty_does_not_bump(self):
        engine, _ = self._engine()
        report = engine.extend_schema([c1()])  # already present
        assert report.built == 0 and report.added == ()
        assert engine.schema_version == 0

    def test_extend_rejects_non_constraints(self):
        engine, _ = self._engine()
        from repro.errors import EngineError
        with pytest.raises(EngineError):
            engine.extend_schema(["not-a-constraint"])

    def test_extend_mutable_session_supports_updates(self):
        g = Graph()
        y = g.add_node("year", value=2000)
        m = g.add_node("movie")
        g.add_edge(m, y)
        engine = QueryEngine.open(g, AccessSchema([c1()]), frozen=False)
        q = parse_pattern(MY_QUERY)
        with pytest.raises(NotEffectivelyBounded):
            engine.query(q)
        engine.extend_schema([c2()])
        assert len(engine.query(q).answer) == 1
        # The adopted mutable index participates in incremental
        # maintenance: a delta must repair it, not bypass it.
        from repro import GraphDelta
        delta = GraphDelta()
        m2 = 10
        delta.add_node(m2, "movie")
        delta.add_edge(m2, y)
        engine.apply(delta)
        assert len(engine.query(q).answer) == 2
