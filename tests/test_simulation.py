"""Tests for graph simulation (gsim) — the maximum match relation."""

import pytest

from repro import Graph, Pattern, Predicate, simulate
from repro.errors import MatchTimeout, PatternError
from repro.matching.simulation import relation_pairs, simulation_holds
from tests.conftest import build_g1, build_q1


class TestBasics:
    def test_simple_chain(self):
        g = Graph()
        a = g.add_node("A")
        b = g.add_node("B")
        g.add_edge(a, b)
        p = Pattern()
        pa = p.add_node("A")
        pb = p.add_node("B")
        p.add_edge(pa, pb)
        relation = simulate(p, g)
        assert relation == {pa: {a}, pb: {b}}

    def test_missing_successor_empties_relation(self):
        g = Graph()
        a = g.add_node("A")
        g.add_node("B")      # not connected to a
        p = Pattern()
        pa = p.add_node("A")
        pb = p.add_node("B")
        p.add_edge(pa, pb)
        assert simulate(p, g) == {}

    def test_missing_label_empties_relation(self):
        g = Graph()
        g.add_node("A")
        p = Pattern()
        p.add_node("A")
        p.add_node("B")
        assert simulate(p, g) == {}

    def test_predicate_filter(self):
        g = Graph()
        y1 = g.add_node("year", value=2010)
        y2 = g.add_node("year", value=2012)
        p = Pattern()
        py = p.add_node("year", predicate=Predicate.of((">=", 2011)))
        assert simulate(p, g) == {py: {y2}}

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            simulate(Pattern(), Graph())

    def test_cycle_pattern_on_cycle_graph(self):
        """Simulation handles cyclic patterns (unlike naive recursion)."""
        g = Graph()
        a = g.add_node("A")
        b = g.add_node("B")
        g.add_edge(a, b)
        g.add_edge(b, a)
        p = Pattern()
        pa = p.add_node("A")
        pb = p.add_node("B")
        p.add_edge(pa, pb)
        p.add_edge(pb, pa)
        assert simulate(p, g) == {pa: {a}, pb: {b}}

    def test_simulation_not_localized(self):
        """Example 2: u2 matches every B on the cycle of G1, because
        simulation only needs *some* successor chain, not a local one."""
        q1 = build_q1()
        g1 = build_g1(n=6)
        relation = simulate(q1, g1)
        assert relation, "G1 matches Q1"
        b_nodes = {v for v in g1.nodes() if g1.label_of(v) == "B"}
        assert relation[1] == b_nodes

    def test_breaking_the_cycle_empties(self):
        """Removing one cycle edge of G1 kills all matches of Q1 — the
        recursive nature of simulation."""
        q1 = build_q1()
        g1 = build_g1(n=4)
        g1.remove_edge(0, 1)
        assert simulate(q1, g1) == {}

    def test_candidate_restriction(self):
        g = Graph()
        a1 = g.add_node("A")
        a2 = g.add_node("A")
        b = g.add_node("B")
        g.add_edge(a1, b)
        g.add_edge(a2, b)
        p = Pattern()
        pa = p.add_node("A")
        pb = p.add_node("B")
        p.add_edge(pa, pb)
        relation = simulate(p, g, candidates={pa: {a1}})
        assert relation[pa] == {a1}

    def test_timeout(self):
        g = Graph()
        nodes = [g.add_node("N") for _ in range(6000)]
        for i in range(5999):
            g.add_edge(nodes[i], nodes[i + 1])
        p = Pattern()
        p1 = p.add_node("N")
        p2 = p.add_node("N")
        p.add_edge(p1, p2)
        p.add_edge(p2, p1)
        with pytest.raises(MatchTimeout):
            simulate(p, g, timeout=0.0)


class TestMaximality:
    def test_result_is_simulation(self):
        """simulation_holds validates the two defining conditions."""
        q1 = build_q1()
        g1 = build_g1(n=5)
        relation = simulate(q1, g1)
        assert simulation_holds(q1, g1, relation)

    def test_result_is_maximal(self):
        """No valid simulation pair may be missing from the result."""
        q1 = build_q1()
        g1 = build_g1(n=4)
        relation = simulate(q1, g1)
        for u in q1.nodes():
            for v in g1.nodes():
                if v in relation.get(u, set()):
                    continue
                trial = {k: set(s) for k, s in relation.items()}
                trial.setdefault(u, set()).add(v)
                assert not simulation_holds(q1, g1, trial), \
                    f"({u},{v}) could be added: result not maximal"

    def test_subgraph_match_implies_simulation_pairs(self, imdb_small):
        """Every subgraph-isomorphism match is contained in the maximum
        simulation (localized implies simulated)."""
        from repro.matching import find_matches
        from repro.pattern import parse_pattern
        graph, _ = imdb_small
        p = parse_pattern("m: movie; a: actor; c: country; m -> a; a -> c")
        relation = simulate(p, graph)
        for match in find_matches(p, graph, limit=50):
            for u, v in match.items():
                assert v in relation[u]


class TestHelpers:
    def test_relation_pairs(self):
        assert relation_pairs({0: {1, 2}, 1: {3}}) == {(0, 1), (0, 2), (1, 3)}

    def test_simulation_holds_rejects_empty(self):
        assert not simulation_holds(build_q1(), build_g1(), {})

    def test_simulation_holds_rejects_wrong_label(self):
        g = Graph()
        a = g.add_node("A")
        p = Pattern()
        pa = p.add_node("A")
        assert simulation_holds(p, g, {pa: {a}})
        b = g.add_node("B")
        assert not simulation_holds(p, g, {pa: {b}})


class TestCounterInitializationOrder:
    def test_init_time_evictions_not_double_subtracted(self):
        """Regression (hypothesis-discovered): counters must be seeded
        against the *initial* sim sets. Counting against sets already
        shrunk by earlier pattern edges let the propagation queue
        double-subtract init-time evictions, wrongly emptying sim sets.

        Here sim(u1) loses node 13 while edge (u1, u0) is initialized;
        node 8's counter for edge (u2, u1) must not be decremented for
        that earlier eviction (8 -> 13 exists, but 13 was never counted).
        """
        g = Graph()
        labels = {0: "L0", 1: "L0", 2: "L1", 3: "L2", 4: "L1", 5: "L0",
                  6: "L1", 7: "L3", 8: "L2", 9: "L3", 10: "L2", 11: "L0",
                  12: "L3", 13: "L3"}
        for node, label in labels.items():
            g.add_node(label, node_id=node)
        for edge in [(0, 2), (2, 8), (5, 2), (5, 12), (5, 13), (6, 11),
                     (7, 2), (7, 4), (7, 8), (7, 10), (7, 12), (8, 2),
                     (8, 3), (8, 5), (8, 10), (8, 12), (8, 13), (9, 5),
                     (12, 6)]:
            g.add_edge(*edge)

        p = Pattern()
        u0 = p.add_node("L1")
        u1 = p.add_node("L3")
        u2 = p.add_node("L2")
        p.add_edge(u1, u0)
        p.add_edge(u2, u1)

        relation = simulate(p, g)
        expected = {u0: {2, 4, 6}, u1: {7, 12}, u2: {8}}
        assert relation == expected
        assert simulation_holds(p, g, relation)
