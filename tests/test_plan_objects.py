"""Tests for the plan value objects (FetchOp / EdgeCheck / QueryPlan)."""

import math

import pytest

from repro import AccessConstraint, Pattern, qplan
from repro.core.plan import (
    EDGE_VIA_INDEX,
    EDGE_VIA_PROBE,
    EdgeCheck,
    FetchOp,
    QueryPlan,
)
from repro.pattern.predicates import TRUE, Predicate


@pytest.fixture()
def sample_plan(q0, a0_schema):
    return qplan(q0, a0_schema)


class TestFetchOp:
    def test_initial_detection(self, sample_plan):
        initials = [op for op in sample_plan.ops if op.is_initial]
        assert len(initials) == 3  # award, year, country
        assert all(op.source_nodes == () for op in initials)

    def test_describe_initial(self, q0, sample_plan):
        op = sample_plan.ops[0]
        text = op.describe(q0)
        assert "ft(" in text and "nil" in text

    def test_describe_general(self, q0, sample_plan):
        general = next(op for op in sample_plan.ops if not op.is_initial)
        text = general.describe(q0)
        assert "nil" not in text

    def test_frozen(self, sample_plan):
        with pytest.raises(AttributeError):
            sample_plan.ops[0].fetch_bound = 1


class TestEdgeCheck:
    def test_describe_index(self):
        check = EdgeCheck(edge=(0, 1), mode=EDGE_VIA_INDEX, fetch_target=1,
                          source_nodes=(0,),
                          constraint=AccessConstraint(("a",), "b", 2),
                          cost_bound=4)
        assert "check(" in check.describe()

    def test_describe_probe(self):
        check = EdgeCheck(edge=(0, 1), mode=EDGE_VIA_PROBE, cost_bound=9)
        assert "probe(" in check.describe()

    def test_default_cost_is_infinite(self):
        assert EdgeCheck(edge=(0, 1), mode=EDGE_VIA_PROBE).cost_bound == math.inf


class TestQueryPlan:
    def test_ops_for_multiple(self, sample_plan):
        for node in sample_plan.pattern.nodes():
            ops = sample_plan.ops_for(node)
            assert ops
            assert sample_plan.final_op_for(node) is ops[-1]

    def test_worst_case_totals_consistent(self, sample_plan):
        assert sample_plan.worst_case_total_accessed == \
            sample_plan.worst_case_nodes_fetched + \
            sample_plan.worst_case_edges_checked

    def test_repr(self, sample_plan):
        assert "QueryPlan" in repr(sample_plan)
        assert "ops=6" in repr(sample_plan)

    def test_describe_contains_every_op_and_check(self, sample_plan):
        text = sample_plan.describe()
        assert text.count("ft(") == len(sample_plan.ops)
        assert text.count("check(") + text.count("probe(") == \
            len(sample_plan.edge_checks)

    def test_empty_plan_sums(self):
        plan = QueryPlan(pattern=Pattern(), schema=None, semantics="subgraph")
        assert plan.worst_case_nodes_fetched == 0
        assert plan.worst_case_edges_checked == 0
        assert plan.worst_case_gq_nodes == 0

    def test_infinite_bounds_render(self):
        pattern = Pattern()
        node = pattern.add_node("x")
        plan = QueryPlan(pattern=pattern, schema=None, semantics="subgraph")
        plan.ops.append(FetchOp(target=node, source_nodes=(),
                                constraint=AccessConstraint((), "x", 1),
                                predicate=TRUE, fetch_bound=math.inf,
                                size_bound=math.inf))
        assert "inf" in plan.describe()

    def test_fractional_bounds_render(self):
        pattern = Pattern()
        node = pattern.add_node("x")
        plan = QueryPlan(pattern=pattern, schema=None, semantics="subgraph")
        plan.ops.append(FetchOp(target=node, source_nodes=(),
                                constraint=AccessConstraint((), "x", 1),
                                predicate=Predicate.of(("=", 1)),
                                fetch_bound=2.5, size_bound=1))
        assert "2.5" in plan.describe()
