"""Tests for the QueryEngine session facade, its plan cache, and the
frozen index read path."""

import pytest

from repro import (
    AccessConstraint,
    AccessSchema,
    AccessStats,
    EngineError,
    Graph,
    GraphDelta,
    NotEffectivelyBounded,
    PlanCache,
    QueryEngine,
)
from repro.constraints.index import (
    ConstraintIndex,
    FrozenConstraintIndex,
    SchemaIndex,
)
from repro.engine.cache import pattern_fingerprint
from repro.errors import SchemaError
from repro.matching.bounded import bvf2
from repro.matching.simulation import relation_pairs
from repro.matching.vf2 import find_matches
from repro.pattern import parse_pattern


@pytest.fixture(scope="module")
def imdb_engine(imdb_small_module):
    graph, schema = imdb_small_module
    return QueryEngine.open(graph, schema)


@pytest.fixture(scope="module")
def imdb_small_module():
    from repro.graph.generators import imdb_like
    return imdb_like(scale=0.02, seed=7)


MY_QUERY = "m: movie; y: year; m -> y"


# ---------------------------------------------------------------- PlanCache
class TestPlanCache:
    def test_hit_miss_counting(self):
        cache = PlanCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 1
        info = cache.info()
        assert info["size"] == 1 and info["maxsize"] == 4

    def test_lru_eviction_order(self):
        cache = PlanCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a": now "b" is the LRU entry
        cache.put("c", 3)       # evicts "b"
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1
        assert list(cache.keys()) == ["a", "c"]

    def test_put_refreshes_recency(self):
        cache = PlanCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)      # refresh via put
        cache.put("c", 3)       # evicts "b", not "a"
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_invalidate_and_clear(self):
        cache = PlanCache()
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


# --------------------------------------------------------- pattern keys
class TestPatternFingerprint:
    def test_identical_patterns_same_key(self):
        k1, _ = pattern_fingerprint(parse_pattern(MY_QUERY))
        k2, _ = pattern_fingerprint(parse_pattern(MY_QUERY))
        assert k1 == k2

    def test_renumbered_isomorphic_same_key(self):
        # Same pattern, node declaration order swapped -> different ids.
        k1, _ = pattern_fingerprint(parse_pattern("m: movie; y: year; m -> y"))
        k2, _ = pattern_fingerprint(parse_pattern("y: year; m: movie; m -> y"))
        assert k1 == k2

    def test_different_structure_different_key(self):
        k1, _ = pattern_fingerprint(parse_pattern("m: movie; y: year; m -> y"))
        k2, _ = pattern_fingerprint(parse_pattern("m: movie; y: year; y -> m"))
        assert k1 != k2

    def test_predicates_distinguish(self):
        k1, _ = pattern_fingerprint(
            parse_pattern("m: movie; y: year; m -> y; y.value >= 2011"))
        k2, _ = pattern_fingerprint(parse_pattern(MY_QUERY))
        assert k1 != k2

    def test_predicate_atom_order_irrelevant(self):
        k1, _ = pattern_fingerprint(parse_pattern(
            "m: movie; y: year; m -> y; y.value >= 2011; y.value <= 2013"))
        k2, _ = pattern_fingerprint(parse_pattern(
            "m: movie; y: year; m -> y; y.value <= 2013; y.value >= 2011"))
        assert k1 == k2

    def test_order_realizes_key(self):
        pattern = parse_pattern("y: year; m: movie; m -> y")
        key, order = pattern_fingerprint(pattern)
        assert sorted(order) == sorted(pattern.nodes())
        labels = tuple(desc[0] for desc in key[0])
        assert labels == tuple(pattern.label_of(u) for u in order)


# ------------------------------------------------------------ QueryEngine
class TestEngineCaching:
    def test_hit_miss_counters(self, imdb_small_module):
        graph, schema = imdb_small_module
        engine = QueryEngine.open(graph, schema)
        q = parse_pattern(MY_QUERY)
        engine.query(q)
        assert engine.stats.plan_cache_misses == 1
        engine.query(q)
        engine.query(q)
        assert engine.stats.plan_cache_hits == 2
        assert engine.cache_info()["hits"] == 2

    def test_answer_memoized_until_refresh(self, imdb_small_module):
        graph, schema = imdb_small_module
        engine = QueryEngine.open(graph, schema)
        q = parse_pattern(MY_QUERY)
        first = engine.query(q)
        assert engine.query(q) is first
        assert engine.query(q, refresh=True) is not first

    def test_renumbered_pattern_hits_and_answers_correctly(
            self, imdb_small_module):
        graph, schema = imdb_small_module
        engine = QueryEngine.open(graph, schema)
        engine.query(parse_pattern("m: movie; y: year; m -> y"))
        twisted = parse_pattern("y: year; m: movie; m -> y")
        run = engine.query(twisted)
        assert engine.stats.plan_cache_hits == 1
        direct = find_matches(twisted, graph)
        assert {frozenset(m.items()) for m in run.answer} == \
               {frozenset(m.items()) for m in direct}

    def test_renumbered_pattern_answer_memoized(self, imdb_small_module):
        graph, schema = imdb_small_module
        engine = QueryEngine.open(graph, schema)
        engine.query(parse_pattern("m: movie; y: year; m -> y"))
        twisted = parse_pattern("y: year; m: movie; m -> y")
        first = engine.query(twisted)
        # Resubmitting the same renumbered form reuses its memoized run,
        # and a batch with a renumbered duplicate executes it once.
        assert engine.query(twisted) is first
        runs = engine.query_batch([twisted, twisted])
        assert runs[0] is runs[1]

    def test_cached_refusal_raises_fresh_exception(self, imdb_small_module):
        graph, schema = imdb_small_module
        engine = QueryEngine.open(graph, schema)
        bad = parse_pattern("a: actor; c: country; a -> c")
        seen = []
        for _ in range(2):
            with pytest.raises(NotEffectivelyBounded) as info:
                engine.query(bad)
            seen.append(info.value)
        assert seen[0] is not seen[1]
        assert seen[0].uncovered_nodes == seen[1].uncovered_nodes

    def test_cache_info_agrees_with_stats(self, imdb_small_module):
        graph, _ = imdb_small_module
        cache = PlanCache()
        q = parse_pattern(MY_QUERY)
        e1 = QueryEngine.open(graph, AccessSchema([]), plan_cache=cache)
        with pytest.raises(NotEffectivelyBounded):
            e1.query(q)
        _, schema = imdb_small_module
        e2 = QueryEngine.open(graph, schema, plan_cache=cache)
        e2.query(q)  # finds the stale entry: must count as a miss everywhere
        assert e2.stats.plan_cache_misses == 1
        assert e2.stats.plan_cache_hits == 0
        assert cache.info()["hits"] == 0
        assert cache.info()["misses"] == 2

    def test_unbounded_verdict_cached(self, imdb_small_module):
        graph, schema = imdb_small_module
        engine = QueryEngine.open(graph, schema)
        bad = parse_pattern("a: actor; c: country; a -> c")
        for _ in range(2):
            with pytest.raises(NotEffectivelyBounded):
                engine.query(bad)
        assert engine.stats.plan_cache_misses == 1
        assert engine.stats.plan_cache_hits == 1

    def test_semantics_cached_separately(self, imdb_small_module):
        graph, schema = imdb_small_module
        engine = QueryEngine.open(graph, schema)
        q = parse_pattern(MY_QUERY)
        engine.query(q, "subgraph")
        engine.query(q, "simulation")
        assert engine.stats.plan_cache_misses == 2

    def test_unknown_semantics_rejected(self, imdb_engine):
        with pytest.raises(EngineError):
            imdb_engine.prepare(parse_pattern(MY_QUERY), "nope")

    def test_repeated_workload_hits_per_pattern(self, imdb_small_module):
        """Acceptance: a 50-query workload with repeats gets >= 1 plan
        cache hit per repeated pattern."""
        graph, schema = imdb_small_module
        engine = QueryEngine.open(graph, schema)
        distinct = [parse_pattern(MY_QUERY, name=f"q{i}") for i in range(5)]
        distinct += [
            parse_pattern("aw: award; y: year; m: movie; m -> aw; m -> y",
                          name="qa"),
            parse_pattern("m: movie; y: year; m -> y; y.value >= 2011",
                          name="qp"),
        ]
        # 7 distinct query objects, 50 total queries. The first three
        # MY_QUERY copies share one canonical form, so even the "distinct"
        # prefix produces hits; every later repeat must hit.
        workload = (distinct * 8)[:50]
        engine.query_batch(workload)
        stats = engine.stats
        assert stats.plan_cache_hits + stats.plan_cache_misses == 50
        assert stats.plan_cache_misses == 3  # 3 canonical forms
        assert stats.plan_cache_hits >= 50 - len(distinct)


class TestEngineEvaluation:
    def test_matches_loose_pieces_subgraph(self, imdb_small_module):
        graph, schema = imdb_small_module
        engine = QueryEngine.open(graph, schema)
        q = parse_pattern(MY_QUERY)
        run = engine.query(q)
        loose = bvf2(q, SchemaIndex(graph, schema))
        assert {frozenset(m.items()) for m in run.answer} == \
               {frozenset(m.items()) for m in loose.answer}

    def test_matches_loose_pieces_simulation(self, imdb_small_module):
        graph, schema = imdb_small_module
        engine = QueryEngine.open(graph, schema)
        q = parse_pattern(MY_QUERY)
        run = engine.query(q, "simulation")
        from repro.matching.bounded import bsim
        loose = bsim(q, SchemaIndex(graph, schema))
        assert relation_pairs(run.answer) == relation_pairs(loose.answer)

    def test_stats_forwarded(self, imdb_small_module):
        graph, schema = imdb_small_module
        engine = QueryEngine.open(graph, schema)
        stats = AccessStats()
        engine.query(parse_pattern(MY_QUERY), stats=stats)
        assert stats.total_accessed > 0
        assert engine.stats.total_accessed == stats.total_accessed

    def test_query_batch_equivalent_to_per_query(self, imdb_small_module):
        graph, schema = imdb_small_module
        patterns = [
            parse_pattern(MY_QUERY, name="q0"),
            parse_pattern("aw: award; y: year; m: movie; m -> aw; m -> y",
                          name="q1"),
            parse_pattern(MY_QUERY, name="q0-again"),
            parse_pattern("m: movie; y: year; m -> y; y.value >= 2011",
                          name="q2"),
        ]
        batch_engine = QueryEngine.open(graph, schema)
        batched = batch_engine.query_batch(patterns)
        for pattern, run in zip(patterns, batched):
            solo = QueryEngine.open(graph, schema).query(pattern)
            assert {frozenset(m.items()) for m in run.answer} == \
                   {frozenset(m.items()) for m in solo.answer}
        # The duplicate executed once: results 0 and 2 are the same run.
        assert batched[0] is batched[2]

    def test_query_batch_mixed_semantics(self, imdb_small_module):
        graph, schema = imdb_small_module
        engine = QueryEngine.open(graph, schema)
        q = parse_pattern(MY_QUERY)
        sub_run, sim_run = engine.query_batch([(q, "subgraph"),
                                               (q, "simulation")])
        assert isinstance(sub_run.answer, list)
        assert isinstance(sim_run.answer, dict)

    def test_prepared_execute_edge_modes_agree(self, imdb_small_module):
        from repro.core.executor import MODE_PROBE
        graph, schema = imdb_small_module
        engine = QueryEngine.open(graph, schema)
        prepared = engine.prepare(parse_pattern(MY_QUERY))
        via_plan = prepared.execute()
        via_probe = prepared.execute(edge_mode=MODE_PROBE)
        plan_matches = find_matches(prepared.pattern, via_plan.gq,
                                    candidates=via_plan.candidates)
        probe_matches = find_matches(prepared.pattern, via_probe.gq,
                                     candidates=via_probe.candidates)
        assert {frozenset(m.items()) for m in plan_matches} == \
               {frozenset(m.items()) for m in probe_matches}


class TestEngineInvalidation:
    def _mutable_engine(self):
        g = Graph()
        y = g.add_node("year", value=2000)
        m = g.add_node("movie")
        g.add_edge(m, y)
        schema = AccessSchema([AccessConstraint((), "year", 10),
                               AccessConstraint(("year",), "movie", 10)])
        return g, y, QueryEngine.open(g, schema, frozen=False)

    def test_apply_invalidates_answers_not_plans(self):
        _, y, engine = self._mutable_engine()
        q = parse_pattern(MY_QUERY)
        before = engine.query(q)
        assert len(before.answer) == 1
        delta = GraphDelta().add_node(9, "movie").add_edge(9, y)
        report = engine.apply(delta)
        assert report.still_satisfied
        after = engine.query(q)
        assert after is not before
        assert len(after.answer) == 2
        # The plan survived: one miss total, the re-query was a hit.
        assert engine.stats.plan_cache_misses == 1
        assert engine.stats.plan_cache_hits == 1

    def test_generation_bumps_per_apply(self):
        _, y, engine = self._mutable_engine()
        assert engine.generation == 0
        engine.apply(GraphDelta().add_node(9, "movie").add_edge(9, y))
        engine.apply(GraphDelta().remove_edge(9, y))
        assert engine.generation == 2

    def test_frozen_engine_refuses_apply(self, imdb_small_module):
        graph, schema = imdb_small_module
        engine = QueryEngine.open(graph, schema)
        with pytest.raises(EngineError):
            engine.apply(GraphDelta().add_node(10**6, "movie"))

    def test_mutable_engine_requires_mutable_graph(self, imdb_small_module):
        from repro.graph.frozen import FrozenGraph
        graph, schema = imdb_small_module
        with pytest.raises(EngineError):
            QueryEngine.open(FrozenGraph.from_graph(graph), schema,
                             frozen=False)


class TestSharedPlanCache:
    def test_shared_across_snapshots(self, imdb_small_module):
        graph, schema = imdb_small_module
        cache = PlanCache()
        q = parse_pattern(MY_QUERY)
        e1 = QueryEngine.open(graph, schema, plan_cache=cache)
        r1 = e1.query(q)
        e2 = QueryEngine.open(graph, schema, plan_cache=cache)
        r2 = e2.query(q)
        assert e2.stats.plan_cache_hits == 1
        assert r2 is not r1  # different session, separately executed
        assert {frozenset(m.items()) for m in r1.answer} == \
               {frozenset(m.items()) for m in r2.answer}

    def test_different_schema_does_not_reuse_plan(self, imdb_small_module):
        graph, schema = imdb_small_module
        cache = PlanCache()
        q = parse_pattern(MY_QUERY)
        e1 = QueryEngine.open(graph, schema, plan_cache=cache)
        e1.query(q)
        other_schema = AccessSchema(list(schema))
        e2 = QueryEngine.open(graph, other_schema, plan_cache=cache)
        e2.query(q)
        # The cached plan belongs to a different schema object: re-planned.
        assert e2.stats.plan_cache_misses == 1
        assert e2.prepare(q).plan.schema is other_schema

    def test_different_schema_does_not_reuse_negative_verdict(
            self, imdb_small_module):
        graph, _ = imdb_small_module
        cache = PlanCache()
        q = parse_pattern(MY_QUERY)
        empty = AccessSchema([])
        e1 = QueryEngine.open(graph, empty, plan_cache=cache)
        with pytest.raises(NotEffectivelyBounded):
            e1.query(q)
        # Under a schema that bounds q, the cached refusal must not leak.
        _, schema = imdb_small_module
        e2 = QueryEngine.open(graph, schema, plan_cache=cache)
        assert len(e2.query(q).answer) > 0

    def test_schema_extension_invalidates_negative_verdict(self):
        g = Graph()
        y = g.add_node("year", value=2000)
        m = g.add_node("movie")
        g.add_edge(m, y)
        schema = AccessSchema([AccessConstraint((), "year", 10)])
        engine = QueryEngine.open(g, schema)
        q = parse_pattern(MY_QUERY)
        with pytest.raises(NotEffectivelyBounded):
            engine.query(q)
        # An M-bounded extension grows the schema in place; the cached
        # "not bounded" verdict is now stale and must be re-checked.
        engine.schema_index.add_constraint(
            AccessConstraint(("year",), "movie", 10))
        assert len(engine.query(q).answer) == 1

    def test_shared_cache_does_not_pin_sessions(self, imdb_small_module):
        import weakref
        graph, schema = imdb_small_module
        cache = PlanCache()
        q = parse_pattern(MY_QUERY)
        engine = QueryEngine.open(graph, schema, plan_cache=cache)
        engine.query(q)
        ref = weakref.ref(engine)
        del engine
        import gc
        gc.collect()
        # Only plans (Q- and A-dependent) live in the shared cache; the
        # session, its snapshot and its answers must be collectable.
        assert ref() is None
        assert len(cache) == 1


# ------------------------------------------------------- frozen index path
class TestFrozenIndex:
    def test_engine_selects_frozen_variant(self, imdb_engine):
        sx = imdb_engine.schema_index
        assert sx.frozen
        for constraint in imdb_engine.schema:
            assert isinstance(sx.index_for(constraint),
                              FrozenConstraintIndex)

    def test_frozen_equals_mutable(self, imdb_small_module):
        graph, schema = imdb_small_module
        mutable = SchemaIndex(graph, schema)
        frozen = SchemaIndex(graph, schema, frozen=True)
        for constraint in schema:
            mi = mutable.index_for(constraint)
            fi = frozen.index_for(constraint)
            assert set(mi.keys()) == set(fi.keys())
            assert mi.num_keys == fi.num_keys
            assert mi.max_entry == fi.max_entry
            assert mi.size == fi.size
            for key in mi.keys():
                assert sorted(mi.fetch(key)) == sorted(fi.fetch(key))

    def test_frozen_payloads_sorted_and_zero_copy(self):
        g = Graph()
        years = [g.add_node("year", value=2000 + i) for i in range(3)]
        m = g.add_node("movie")
        for y in years:
            g.add_edge(m, y)
        constraint = AccessConstraint(("movie",), "year", 3)
        index = FrozenConstraintIndex(constraint, g)
        payload = index.fetch((m,))
        assert payload == tuple(sorted(years))
        assert index.fetch((m,)) is payload  # stored tuple, no copy

    def test_freeze_from_mutable(self):
        g = Graph()
        y = g.add_node("year", value=2012)
        m = g.add_node("movie")
        g.add_edge(m, y)
        constraint = AccessConstraint(("movie",), "year", 1)
        frozen = ConstraintIndex(constraint, g).freeze()
        assert frozen.fetch((m,)) == (y,)

    def test_frozen_rejects_member_tracking(self, imdb_small_module):
        graph, schema = imdb_small_module
        with pytest.raises(SchemaError):
            SchemaIndex(graph, schema, frozen=True, track_members=True)

    def test_frozen_add_constraint_rejects_member_tracking(
            self, imdb_small_module):
        graph, schema = imdb_small_module
        sx = SchemaIndex(graph, AccessSchema(list(schema)[:2]), frozen=True)
        with pytest.raises(SchemaError):
            sx.add_constraint(AccessConstraint(("movie",), "year", 99),
                              track_members=True)

    def test_frozen_type1_key_present_in_empty_graph(self):
        constraint = AccessConstraint((), "year", 5)
        index = FrozenConstraintIndex(constraint, Graph())
        assert index.fetch(()) == ()
        assert index.num_keys == 1


# ---------------------------------------------------------- graph satellite
class TestLabelIndexProtection:
    def test_nodes_with_label_is_immutable_copy(self):
        g = Graph()
        g.add_node("movie")
        bucket = g.nodes_with_label("movie")
        with pytest.raises(AttributeError):
            bucket.add(99)
        assert g.nodes_with_label("movie") == {0}

    def test_labels_returns_copy(self):
        g = Graph()
        g.add_node("movie")
        labels = g.labels()
        labels.add("fake")
        assert g.labels() == {"movie"}
