"""Tests for the graph profiling module."""

from repro.constraints.discovery import discover_unit, neighbor_label_bounds
from repro.graph.stats import (
    DistributionSummary,
    degree_summary,
    label_histogram,
    label_pair_degrees,
    profile,
)


class TestDistributionSummary:
    def test_empty(self):
        summary = DistributionSummary.from_values([])
        assert summary.count == 0
        assert summary.maximum == 0

    def test_single(self):
        summary = DistributionSummary.from_values([7])
        assert (summary.minimum, summary.maximum, summary.p50) == (7, 7, 7)

    def test_percentiles_ordered(self):
        summary = DistributionSummary.from_values(range(100))
        assert summary.p50 <= summary.p90 <= summary.p99 <= summary.maximum
        assert summary.mean == 49.5


class TestHistograms:
    def test_label_histogram(self, tiny_graph):
        histogram = label_histogram(tiny_graph)
        assert histogram["movie"] == 2
        assert list(histogram)[0] == "movie"  # descending order

    def test_degree_summary(self, tiny_graph):
        summary = degree_summary(tiny_graph)
        assert summary["total"].maximum == 2  # movie 0, year, actor
        assert summary["out"].maximum == 2    # movie 0
        assert summary["out"].count == tiny_graph.num_nodes

    def test_pair_degrees_match_discovery(self, tiny_graph):
        """The per-pair maximum equals the discovered unit bound."""
        pairs = label_pair_degrees(tiny_graph)
        bounds = neighbor_label_bounds(tiny_graph)
        for pair, summary in pairs.items():
            assert summary.maximum == bounds[pair]
        discovered = {(c.source[0], c.target): c.bound
                      for c in discover_unit(tiny_graph)}
        for (la, lb), bound in discovered.items():
            assert pairs[(la, lb)].maximum == bound

    def test_pair_degrees_cap(self, tiny_graph):
        assert len(label_pair_degrees(tiny_graph, max_pairs=2)) == 2

    def test_profile_renders(self, imdb_small):
        graph, _ = imdb_small
        text = profile(graph)
        assert "label histogram" in text
        assert "movie" in text
        assert "type (2) candidates" in text
