"""Shared fixtures: the paper's running examples and small datasets."""

from __future__ import annotations

import pytest

from repro import AccessConstraint, AccessSchema, Graph, Pattern, SchemaIndex
from repro.graph.generators import dbpedia_like, imdb_like, web_like
from repro.pattern import parse_pattern

Q0_TEXT = """
aw: award;  y: year;  m: movie
a: actor;  s: actress;  c: country
m -> aw;  m -> y;  m -> a;  m -> s
a -> c;  s -> c
y.value >= 2011;  y.value <= 2013
"""


@pytest.fixture(scope="session")
def imdb_small():
    """A small IMDbG stand-in plus its schema (scale 0.02)."""
    return imdb_like(scale=0.02, seed=7)


@pytest.fixture(scope="session")
def imdb_index(imdb_small):
    graph, schema = imdb_small
    return SchemaIndex(graph, schema)


@pytest.fixture(scope="session")
def dbpedia_small():
    return dbpedia_like(scale=0.02, seed=7)


@pytest.fixture(scope="session")
def web_small():
    return web_like(scale=0.02, seed=7)


@pytest.fixture()
def q0():
    """The paper's Fig. 1 pattern Q0."""
    return parse_pattern(Q0_TEXT, name="Q0")


@pytest.fixture()
def a0_schema(imdb_small):
    """The paper's A0 — the first 8 constraints of the IMDb schema are
    exactly Example 3's φ1–φ6 (φ2/φ3 each stand for a pair)."""
    _, schema = imdb_small
    return AccessSchema(list(schema)[:8])


def build_q1() -> Pattern:
    """The paper's Fig. 2 pattern Q1 (A<->B cycle, C and D pointing at B)."""
    q1 = Pattern(name="Q1")
    u1 = q1.add_node("A")
    u2 = q1.add_node("B")
    u3 = q1.add_node("C")
    u4 = q1.add_node("D")
    q1.add_edge(u1, u2)
    q1.add_edge(u2, u1)
    q1.add_edge(u3, u2)
    q1.add_edge(u4, u2)
    return q1


@pytest.fixture()
def q1():
    return build_q1()


@pytest.fixture()
def q2(q1):
    """Example 9's Q2: Q1 with the C/D edges reversed."""
    pattern = q1.reversed_edges([(2, 1), (3, 1)])
    pattern.name = "Q2"
    return pattern


@pytest.fixture()
def a1_schema():
    """The paper's A1 (Example 8)."""
    return AccessSchema([
        AccessConstraint(("B",), "A", 2),
        AccessConstraint(("C", "D"), "B", 2),
        AccessConstraint((), "C", 1),
        AccessConstraint((), "D", 1),
    ])


def build_g1(n: int = 6) -> Graph:
    """The paper's Fig. 2 graph G1: an A/B cycle of length 2n with one C
    and one D node attached to the last B node."""
    graph = Graph()
    cycle = [graph.add_node("A" if i % 2 == 0 else "B") for i in range(2 * n)]
    for i in range(2 * n):
        graph.add_edge(cycle[i], cycle[(i + 1) % (2 * n)])
    c = graph.add_node("C")
    d = graph.add_node("D")
    graph.add_edge(c, cycle[2 * n - 1])
    graph.add_edge(d, cycle[2 * n - 1])
    return graph


@pytest.fixture()
def g1():
    return build_g1()


@pytest.fixture()
def tiny_graph():
    """A 5-node graph used across unit tests.

    movie -> year(2012), movie -> actor, actor -> country, movie2 -> year
    """
    graph = Graph()
    movie = graph.add_node("movie", value="m1")
    year = graph.add_node("year", value=2012)
    actor = graph.add_node("actor", value="a1")
    country = graph.add_node("country", value="uk")
    movie2 = graph.add_node("movie", value="m2")
    graph.add_edge(movie, year)
    graph.add_edge(movie, actor)
    graph.add_edge(actor, country)
    graph.add_edge(movie2, year)
    return graph
