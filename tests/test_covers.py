"""Tests for node/edge covers (VCov/ECov and sVCov/sECov)."""

import pytest

from repro import AccessConstraint, AccessSchema, Pattern
from repro.core.actualized import SIMULATION, SUBGRAPH
from repro.core.covers import compute_covers, counters_are_safe, edge_cover_witnesses
from repro.pattern import parse_pattern


class TestSubgraphCovers:
    def test_example4_q0_fully_covered(self, q0, a0_schema):
        covers = compute_covers(q0, a0_schema, SUBGRAPH)
        assert covers.complete
        assert covers.node_cover == set(q0.nodes())
        assert covers.edge_cover == set(q0.edges())

    def test_empty_schema_covers_nothing(self, q0):
        covers = compute_covers(q0, AccessSchema(), SUBGRAPH)
        assert covers.node_cover == set()
        assert covers.edge_cover == set()
        assert not covers.complete

    def test_type1_seeds(self, q0, a0_schema):
        covers = compute_covers(q0, a0_schema, SUBGRAPH)
        # award, year, country are type (1) seeded -> provenance is None.
        assert covers.covered_by[0] is None
        assert covers.covered_by[1] is None
        assert covers.covered_by[5] is None
        # movie deduced through (year, award) -> (movie, 4).
        assert covers.covered_by[2].constraint.target == "movie"

    def test_partial_cover(self, q0):
        # Only year+award type (1): movie becomes covered, actors do not.
        schema = AccessSchema([
            AccessConstraint((), "year", 135),
            AccessConstraint((), "award", 24),
            AccessConstraint(("year", "award"), "movie", 4),
        ])
        covers = compute_covers(q0, schema, SUBGRAPH)
        assert covers.node_cover == {0, 1, 2}
        assert 3 in covers.uncovered_nodes
        assert not covers.complete

    def test_deduction_chain(self):
        """a <- b <- c chain through unit constraints."""
        p = Pattern()
        a = p.add_node("A")
        b = p.add_node("B")
        c = p.add_node("C")
        p.add_edge(a, b)
        p.add_edge(b, c)
        schema = AccessSchema([
            AccessConstraint((), "A", 5),
            AccessConstraint(("A",), "B", 2),
            AccessConstraint(("B",), "C", 3),
        ])
        covers = compute_covers(p, schema, SUBGRAPH)
        assert covers.complete

    def test_edge_needs_covered_member(self):
        """An edge is only covered when the witnessing endpoint is covered."""
        p = Pattern()
        a = p.add_node("A")
        b = p.add_node("B")
        p.add_edge(a, b)
        # B -> (A, 2) exists but B itself is never covered.
        schema = AccessSchema([AccessConstraint(("B",), "A", 2)])
        covers = compute_covers(p, schema, SUBGRAPH)
        assert covers.node_cover == set()
        assert covers.edge_cover == set()


class TestSimulationCovers:
    def test_example8_q1_not_covered(self, q1, a1_schema):
        """sVCov(Q1, A1) misses u1 and u2 (Example 9)."""
        covers = compute_covers(q1, a1_schema, SIMULATION)
        assert 0 not in covers.node_cover
        assert 1 not in covers.node_cover
        assert covers.node_cover == {2, 3}

    def test_example9_q2_covered(self, q2, a1_schema):
        covers = compute_covers(q2, a1_schema, SIMULATION)
        assert covers.complete

    def test_simulation_cover_subset_of_subgraph(self, q1, q2, a1_schema,
                                                 q0, a0_schema):
        for pattern, schema in ((q1, a1_schema), (q2, a1_schema),
                                (q0, a0_schema)):
            sub = compute_covers(pattern, schema, SUBGRAPH)
            sim = compute_covers(pattern, schema, SIMULATION)
            assert sim.node_cover <= sub.node_cover
            assert sim.edge_cover <= sub.edge_cover


class TestCounterVariant:
    def test_counters_safe_detection(self, q0, a0_schema, a1_schema):
        from repro.core.actualized import actualize
        assert counters_are_safe(actualize(q0, a0_schema, SUBGRAPH), q0)

    def test_counters_unsafe_with_duplicate_labels(self):
        """Two same-label neighbours make the counter variant unsound."""
        p = Pattern()
        a1 = p.add_node("A")
        a2 = p.add_node("A")
        b = p.add_node("B")
        p.add_edge(a1, b)
        p.add_edge(a2, b)
        schema = AccessSchema([AccessConstraint(("A",), "B", 2)])
        from repro.core.actualized import actualize
        assert not counters_are_safe(actualize(p, schema, SUBGRAPH), p)

    def test_both_variants_agree_when_safe(self, q0, a0_schema):
        with_sets = compute_covers(q0, a0_schema, SUBGRAPH, use_counters=False)
        with_counters = compute_covers(q0, a0_schema, SUBGRAPH, use_counters=True)
        assert with_sets.node_cover == with_counters.node_cover
        assert with_sets.edge_cover == with_counters.edge_cover

    def test_set_variant_handles_duplicate_labels(self):
        """General case: two A-neighbours, only one covered — the set
        variant must still require *both* labels... here S={A} so one
        covered A suffices; with S={A,C} a second covered A must NOT
        satisfy the C slot."""
        p = Pattern()
        a1 = p.add_node("A")
        a2 = p.add_node("A")
        b = p.add_node("B")
        p.add_edge(a1, b)
        p.add_edge(a2, b)
        schema = AccessSchema([
            AccessConstraint((), "A", 3),
            AccessConstraint(("A", "C"), "B", 2),   # needs a C neighbour too
        ])
        covers = compute_covers(p, schema, SUBGRAPH, use_counters=False)
        assert b not in covers.node_cover


class TestWitnesses:
    def test_edge_witnesses(self, q0, a0_schema):
        covers = compute_covers(q0, a0_schema, SUBGRAPH)
        witnesses = edge_cover_witnesses((2, 3), covers)  # movie -> actor
        assert witnesses
        assert all(phi.target in (2, 3) for phi in witnesses)

    def test_uncovered_edge_no_witnesses(self, q1, a1_schema):
        covers = compute_covers(q1, a1_schema, SIMULATION)
        assert edge_cover_witnesses((0, 1), covers) == []
