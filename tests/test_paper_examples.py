"""Every worked example from the paper, as executable oracles.

These tests pin the implementation to the numbers and verdicts the paper
states explicitly:

* Example 1/6 — the Q0/A0 query plan and its 17 923 / 35 136 / 17 791
  access arithmetic;
* Examples 2, 8 — Q1's non-locality and simulation-unboundedness;
* Examples 9-11 — Q2's boundedness and its 8-node / 12-edge plan;
* Example 7 — the M = 150 instance-bounding of Q0.
"""

import pytest

from repro import (
    AccessStats,
    SchemaIndex,
    bsim,
    bvf2,
    ebchk,
    eechk,
    find_matches,
    qplan,
    sebchk,
    simulate,
    sqplan,
)
from repro.core.executor import execute_plan
from repro.matching.simulation import relation_pairs
from tests.conftest import build_g1


class TestExample1And6:
    """Q0 under A0 on the IMDb graph."""

    def test_q0_effectively_bounded(self, q0, a0_schema):
        assert ebchk(q0, a0_schema).bounded

    def test_plan_matches_example1_arithmetic(self, q0, a0_schema):
        plan = qplan(q0, a0_schema)
        # "The query plan visits at most 135 + 24 + 196 + 288 + 17280 =
        #  17923 nodes, and 576 + 17280 + 17280 = 35136 edges."
        assert plan.worst_case_nodes_fetched == 17923
        assert plan.worst_case_edges_checked == 35136
        # Example 6: "no more than 17791 [nodes of GQ] in total"
        assert plan.worst_case_gq_nodes == 17791

    def test_step_by_step_bounds(self, q0, a0_schema):
        """Example 1 steps (a)-(d): 288 movies, 17280 cast members."""
        plan = qplan(q0, a0_schema)
        assert plan.size_bound(2) == 24 * 3 * 4          # movies
        assert plan.size_bound(3) + plan.size_bound(4) == (30 + 30) * 288

    def test_execution_stays_within_bounds(self, q0, a0_schema, imdb_small):
        graph, _ = imdb_small
        plan = qplan(q0, a0_schema)
        stats = AccessStats()
        execute_plan(plan, SchemaIndex(graph, a0_schema), stats=stats)
        assert stats.nodes_fetched <= 17923
        assert stats.edges_checked <= 35136

    def test_bvf2_equals_direct_evaluation(self, q0, a0_schema, imdb_small):
        graph, _ = imdb_small
        run = bvf2(q0, SchemaIndex(graph, a0_schema))
        direct = find_matches(q0, graph)
        assert {frozenset(m.items()) for m in run.answer} == \
               {frozenset(m.items()) for m in direct}


class TestExample2And8:
    """Q1 and G1: non-localized simulation queries."""

    def test_g1_satisfies_a1(self, g1, a1_schema):
        assert SchemaIndex(g1, a1_schema).satisfied()

    def test_g1_matches_q1(self, q1, g1):
        """Example 2: G1 matches Q1 (via simulation)."""
        relation = simulate(q1, g1)
        assert relation
        # u2 matches every B node on the cycle.
        assert len(relation[1]) == 6

    def test_q1_subgraph_bounded(self, q1, a1_schema):
        """Example 8: VCov(Q1, A1) = V1 and ECov(Q1, A1) = E1."""
        result = ebchk(q1, a1_schema)
        assert result.covers.node_cover == set(q1.nodes())
        assert result.covers.edge_cover == set(q1.edges())

    def test_q1_not_simulation_bounded(self, q1, a1_schema):
        """Example 8: 'However, Q1 is not effectively bounded.'"""
        assert not sebchk(q1, a1_schema).bounded

    def test_match_relation_covers_whole_cycle(self, q1):
        """Example 8: the maximum match relation 'covers' a cycle with
        length proportional to |G1| — for every n."""
        for n in (3, 5, 9):
            g = build_g1(n=n)
            relation = simulate(q1, g)
            assert len(relation[0]) == n  # all A nodes
            assert len(relation[1]) == n  # all B nodes


class TestExample9To11:
    """Q2 = Q1 with reversed C/D edges."""

    def test_q2_simulation_bounded(self, q2, a1_schema):
        result = sebchk(q2, a1_schema)
        assert result.covers.node_cover == set(q2.nodes())
        assert result.covers.edge_cover == set(q2.edges())

    def test_example11_plan_shape(self, q2, a1_schema):
        """'P fetches a subgraph GQ2, by accessing 8 nodes and 12 edges':
        4 candidates for u1, 2 for u2, 1 each for u3/u4; 4+4 edge checks
        for (u1,u2)/(u2,u1) and 2+2 for (u2,u3)/(u2,u4)."""
        plan = sqplan(q2, a1_schema)
        assert plan.worst_case_gq_nodes == 8
        assert plan.worst_case_edges_checked == 12
        sizes = sorted(plan.size_bound(u) for u in q2.nodes())
        assert sizes == [1, 1, 2, 4]

    def test_q2_g1_empty_without_cycle_traversal(self, q2, a1_schema, g1):
        """Example 9: 'we can find Q2(G1) = ∅ without fetching the
        unbounded cycle of G1.'"""
        stats = AccessStats()
        run = bsim(q2, SchemaIndex(g1, a1_schema), stats=stats)
        assert relation_pairs(run.answer) == set()
        assert stats.total_accessed <= 20  # 8 nodes + 12 edges
        assert stats.total_accessed < g1.size

    def test_q2_result_equals_direct(self, q2, a1_schema, g1):
        run = bsim(q2, SchemaIndex(g1, a1_schema))
        assert relation_pairs(run.answer) == \
               relation_pairs(simulate(q2, g1))

    def test_bounded_fetch_independent_of_g1_size(self, q2, a1_schema):
        """The heart of the paper: access volume does not grow with |G|."""
        accessed = []
        for n in (4, 16, 64):
            g = build_g1(n=n)
            stats = AccessStats()
            bsim(q2, SchemaIndex(g, a1_schema), stats=stats)
            accessed.append(stats.total_accessed)
        assert accessed[0] == accessed[1] == accessed[2]


class TestExample7:
    def test_m150_extension(self, q0, a0_schema, imdb_small):
        """Example 7: dropping φ4/φ5 and extending with M = 150 restores
        instance boundedness via ∅->(year,135) and ∅->(award,24)."""
        from repro import AccessSchema
        graph, _ = imdb_small
        reduced = AccessSchema(c for c in a0_schema
                               if not (c.is_type1 and c.target in ("year", "award")))
        assert not ebchk(q0, reduced).bounded
        result = eechk([q0], reduced, graph, 150)
        assert result.bounded
        bounds = {(c.target, c.bound) for c in result.added}
        assert ("year", 135) in bounds and ("award", 24) in bounds
