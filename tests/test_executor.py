"""Tests for plan execution and G_Q assembly."""

import pytest

from repro import (
    AccessConstraint,
    AccessSchema,
    AccessStats,
    Graph,
    SchemaIndex,
    execute_plan,
    qplan,
    sqplan,
)
from repro.core.executor import MODE_PLAN, MODE_PROBE
from repro.errors import PlanError


@pytest.fixture()
def q0_setup(q0, a0_schema, imdb_small):
    graph, _ = imdb_small
    plan = qplan(q0, a0_schema)
    return plan, SchemaIndex(graph, a0_schema), graph


class TestNodePhase:
    def test_candidates_within_bounds(self, q0, q0_setup):
        plan, sx, _ = q0_setup
        result = execute_plan(plan, sx)
        for u in q0.nodes():
            assert len(result.candidates[u]) <= plan.size_bound(u)

    def test_predicates_applied(self, q0, q0_setup):
        plan, sx, graph = q0_setup
        result = execute_plan(plan, sx)
        for v in result.candidates[1]:  # year node
            assert 2011 <= graph.value_of(v) <= 2013

    def test_candidates_superset_of_matches(self, q0, q0_setup):
        from repro.matching import find_matches
        plan, sx, graph = q0_setup
        result = execute_plan(plan, sx)
        for match in find_matches(q0, graph):
            for u, v in match.items():
                assert v in result.candidates[u]

    def test_stats_within_worst_case(self, q0_setup):
        plan, sx, _ = q0_setup
        stats = AccessStats()
        execute_plan(plan, sx, stats=stats)
        assert stats.nodes_fetched <= plan.worst_case_nodes_fetched
        assert stats.edges_checked <= plan.worst_case_edges_checked

    def test_gq_labels_and_values_copied(self, q0_setup):
        plan, sx, graph = q0_setup
        result = execute_plan(plan, sx)
        for v in result.gq.nodes():
            assert result.gq.label_of(v) == graph.label_of(v)
            assert result.gq.value_of(v) == graph.value_of(v)

    def test_gq_is_subgraph(self, q0_setup):
        plan, sx, graph = q0_setup
        result = execute_plan(plan, sx)
        for (v, w) in result.gq.edges():
            assert graph.has_edge(v, w)

    def test_gq_size_property(self, q0_setup):
        plan, sx, _ = q0_setup
        result = execute_plan(plan, sx)
        assert result.gq_size == result.gq.num_nodes + result.gq.num_edges


class TestEdgePhase:
    def test_probe_and_index_modes_agree(self, q0, q0_setup):
        """The three edge strategies must yield G_Q with identical
        answers; index mode may include a few less irrelevant edges."""
        from repro.matching import find_matches
        plan, sx, _ = q0_setup
        via_plan = execute_plan(plan, sx, edge_mode=MODE_PLAN)
        via_probe = execute_plan(plan, sx, edge_mode=MODE_PROBE)
        plan_matches = {frozenset(m.items())
                        for m in find_matches(q0, via_plan.gq)}
        probe_matches = {frozenset(m.items())
                         for m in find_matches(q0, via_probe.gq)}
        assert plan_matches == probe_matches

    def test_index_mode_finds_match_edges(self, q0, q0_setup):
        from repro.matching import find_matches
        plan, sx, graph = q0_setup
        result = execute_plan(plan, sx)
        for match in find_matches(q0, graph):
            for (a, b) in q0.edges():
                assert result.gq.has_edge(match[a], match[b])

    def test_unknown_mode_rejected(self, q0_setup):
        plan, sx, _ = q0_setup
        with pytest.raises(PlanError):
            execute_plan(plan, sx, edge_mode="telepathy")


class TestSimulationExecution:
    def test_q2_on_g1(self, q2, a1_schema, g1):
        """Example 11: bounded fetch touches 8+12 = 20 items at most."""
        sx = SchemaIndex(g1, a1_schema)
        plan = sqplan(q2, a1_schema)
        stats = AccessStats()
        result = execute_plan(plan, sx, stats=stats)
        assert stats.nodes_fetched <= 8
        assert stats.edges_checked <= 12
        # The A/B cycle is never traversed:
        assert stats.total_accessed < g1.size

    def test_simulation_candidates_superset(self, q2, a1_schema, g1):
        from repro.matching import simulate
        sx = SchemaIndex(g1, a1_schema)
        result = execute_plan(sqplan(q2, a1_schema), sx)
        relation = simulate(q2, g1)
        for u, matches in relation.items():
            assert matches <= result.candidates[u]


class TestErrorPaths:
    def test_out_of_order_plan_rejected(self, q0, a0_schema, imdb_small):
        graph, _ = imdb_small
        plan = qplan(q0, a0_schema)
        # Corrupt the plan: drop the type (1) ops the later ops depend on.
        plan.ops = [op for op in plan.ops if not op.is_initial]
        with pytest.raises(PlanError):
            execute_plan(plan, SchemaIndex(graph, a0_schema))

    def test_plan_missing_node_rejected(self, q0, a0_schema, imdb_small):
        graph, _ = imdb_small
        plan = qplan(q0, a0_schema)
        plan.ops = [op for op in plan.ops if op.target != 5]
        with pytest.raises(PlanError):
            execute_plan(plan, SchemaIndex(graph, a0_schema))


class TestSmallWorked:
    def test_hand_checked_graph(self):
        """Fully hand-verifiable end-to-end fetch."""
        g = Graph()
        y = g.add_node("year", value=2000)
        m1 = g.add_node("movie")
        m2 = g.add_node("movie")
        a1 = g.add_node("actor")
        a2 = g.add_node("actor")
        g.add_edge(m1, y)
        g.add_edge(m2, y)
        g.add_edge(m1, a1)
        g.add_edge(m2, a2)
        g.add_edge(m2, a1)
        schema = AccessSchema([
            AccessConstraint((), "year", 1),
            AccessConstraint(("year",), "movie", 2),
            AccessConstraint(("movie",), "actor", 2),
        ])
        from repro import Pattern
        p = Pattern()
        py = p.add_node("year")
        pm = p.add_node("movie")
        pa = p.add_node("actor")
        p.add_edge(pm, py)
        p.add_edge(pm, pa)
        plan = qplan(p, schema)
        result = execute_plan(plan, SchemaIndex(g, schema))
        assert result.candidates[py] == {y}
        assert result.candidates[pm] == {m1, m2}
        assert result.candidates[pa] == {a1, a2}
        assert set(result.gq.edges()) == {(m1, y), (m2, y), (m1, a1),
                                          (m2, a2), (m2, a1)}
