"""Tests for EBChk / sEBChk (effective-boundedness decision)."""

import pytest

from repro import AccessConstraint, AccessSchema, Pattern, ebchk, sebchk
from repro.core.ebchk import is_effectively_bounded
from repro.errors import PatternError
from repro.pattern import parse_pattern


class TestSubgraph:
    def test_q0_bounded_under_a0(self, q0, a0_schema):
        """The paper's headline example (Examples 1-5)."""
        result = ebchk(q0, a0_schema)
        assert result.bounded
        assert bool(result)

    def test_q0_unbounded_without_type1(self, q0, a0_schema):
        """Dropping φ4/φ5 (years/awards counts) breaks the cover chain."""
        reduced = AccessSchema(c for c in a0_schema
                               if not (c.is_type1 and c.target in ("year", "award")))
        result = ebchk(q0, reduced)
        assert not result.bounded
        assert 2 in result.covers.uncovered_nodes  # movie not deducible

    def test_q1_bounded_under_a1(self, q1, a1_schema):
        """Example 8 notes VCov(Q1,A1) = V1 and ECov(Q1,A1) = E1."""
        assert ebchk(q1, a1_schema).bounded

    def test_single_node_type1(self):
        p = Pattern()
        p.add_node("country")
        assert ebchk(p, AccessSchema([AccessConstraint((), "country", 196)])).bounded

    def test_single_node_unbounded(self):
        p = Pattern()
        p.add_node("person")
        assert not ebchk(p, AccessSchema()).bounded

    def test_explain_mentions_uncovered(self, q0):
        result = ebchk(q0, AccessSchema())
        text = result.explain()
        assert "not effectively bounded" in text
        assert "award" in text

    def test_explain_bounded(self, q0, a0_schema):
        assert "effectively bounded" in ebchk(q0, a0_schema).explain()


class TestSimulation:
    def test_q1_not_bounded(self, q1, a1_schema):
        """Examples 8/9: Q1 is NOT effectively bounded for simulation."""
        assert not sebchk(q1, a1_schema).bounded

    def test_q2_bounded(self, q2, a1_schema):
        """Example 9: reversing two edges makes Q2 bounded."""
        assert sebchk(q2, a1_schema).bounded

    def test_simulation_implies_subgraph(self, q2, a1_schema, q0, a0_schema):
        """sVCov ⊆ VCov: simulation-bounded implies subgraph-bounded."""
        for pattern, schema in ((q2, a1_schema), (q0, a0_schema)):
            if sebchk(pattern, schema).bounded:
                assert ebchk(pattern, schema).bounded

    def test_q0_not_simulation_bounded(self, q0, a0_schema):
        """A0 covers actors through their movie *parents*; simulation
        needs children, so Q0 is simulation-unbounded under A0."""
        result = sebchk(q0, a0_schema)
        assert not result.bounded
        assert 3 in result.covers.uncovered_nodes

    def test_q0_simulation_bounded_with_reverse_constraints(self, q0, a0_schema):
        """Adding country -> person constraints re-covers the cast."""
        extended = AccessSchema(a0_schema)
        extended.add(AccessConstraint(("country",), "actor", 50))
        extended.add(AccessConstraint(("country",), "actress", 50))
        result = sebchk(q0, extended)
        # actor/actress now covered via their country child
        assert 3 in result.covers.node_cover
        assert 4 in result.covers.node_cover


class TestCounterConsistency:
    def test_variants_agree_on_workload(self, imdb_small):
        import random

        from repro.pattern.generator import PatternGenerator
        graph, schema = imdb_small
        gen = PatternGenerator.from_graph(graph, rng=random.Random(3))
        for query in gen.generate_many(30):
            general = ebchk(query, schema, use_counters=False)
            fast = ebchk(query, schema)  # auto-select
            assert general.bounded == fast.bounded

    def test_bad_semantics_rejected(self, q0, a0_schema):
        with pytest.raises(PatternError):
            is_effectively_bounded(q0, a0_schema, "bogus")
