"""The binary scatter wire format: framing, packed codecs, negotiation.

Covers the wire-format PR's acceptance criteria at the unit level
(frame layout round-trips, width-adaptive int packing, the packed
task/response codecs restoring byte-identical shapes, encode-once
scatter caching) and over live sockets (mixed-version interop where a
binary-preferring client negotiates down against a JSON-only shard
server, a no-numpy build negotiating JSON, strict ``wire_format=
"binary"`` failing the handshake against a JSON-only fleet, and
malformed/truncated binary frames answered with one typed error — no
hang, clean close).
"""

from __future__ import annotations

import io
import json
import socket
import struct

import pytest

from repro import ShardHandshakeMismatch, ShardUnavailable, connect
from repro.engine.parallel import _ScatterEncoder
from repro.errors import ShardProtocolError
from repro.pattern import parse_pattern
from repro.server import protocol
from repro.server.shardserver import ShardServer
from repro.util import arrays

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

needs_numpy = pytest.mark.skipif(not arrays.HAVE_NUMPY,
                                 reason="binary codec requires numpy")

CHEAP = parse_pattern("m: movie; y: year; m -> y")

TASKS = [
    ("probe", [1, 2, 70000], [3, 4]),
    ("fetch", 0, [(5,), (6,), (2**40,)]),
    ("edge", 1, [(7, 8), (9, 10)]),
    ("fetch", 2, []),
]

RESPONSES = [
    (3, [(1, 3), (70000, 4)]),                                  # probe
    ([[11, 12], [], [2**40]], {5: ("movie", None), 6: ("movie", "x")}),
    [[(20, ((True, False), (False, True)))], []],               # edge
    ([], {}),                                                   # empty fetch
]
KINDS = ["probe", "fetch", "edge", "fetch"]


def read_frame_bytes(data: bytes) -> protocol.Frame:
    return protocol.read_frame(io.BufferedReader(io.BytesIO(data)))


# ------------------------------------------------------------- packing
@needs_numpy
class TestPackInts:
    def test_width_adapts_to_value_range(self):
        assert arrays.pack_ints([0, 255])[0] == "u1"
        assert arrays.pack_ints([0, 256])[0] == "u2"
        assert arrays.pack_ints([0, 0xFFFF])[0] == "u2"
        assert arrays.pack_ints([0, 0x10000])[0] == "i4"
        assert arrays.pack_ints([-1, 100])[0] == "i4"
        assert arrays.pack_ints([0, 2**31])[0] == "i8"
        assert arrays.pack_ints([-2**40])[0] == "i8"

    def test_roundtrip_all_widths(self):
        for values in ([0, 1, 255], [-5, 70000], [2**40, -2**40], []):
            code, raw = arrays.pack_ints(values)
            assert arrays.unpack_ints(code, raw).tolist() == values

    def test_flattens_matrices(self):
        code, raw = arrays.pack_ints([(1, 2), (3, 4)])
        assert arrays.unpack_ints(code, raw).tolist() == [1, 2, 3, 4]

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            arrays.unpack_ints("f8", b"\x00" * 8)


# ------------------------------------------------------------- framing
class TestFraming:
    def test_json_frame_roundtrip(self):
        data = protocol.encode({"op": "ping", "id": 3})
        frame = read_frame_bytes(data)
        assert frame == {"op": "ping", "id": 3}
        assert frame.binary is False
        assert frame.payloads == []
        assert frame.nbytes == len(data)

    def test_binary_frame_roundtrip(self):
        buffers = [b"\x01\x02\x03", b"", b"\xff" * 10]
        data = protocol.encode_binary({"op": "scatter", "id": 9}, buffers)
        frame = read_frame_bytes(data)
        assert frame == {"op": "scatter", "id": 9}
        assert frame.binary is True
        assert [bytes(view) for view in frame.payloads] == buffers
        assert frame.nbytes == len(data)

    def test_binary_magic_cannot_start_a_json_line(self):
        assert protocol.BINARY_MAGIC[0] == 0xAB  # never valid JSON/UTF-8

    def test_payload_reuse_across_headers(self):
        payload = protocol.encode_payload([b"shared"])
        frames = [protocol.binary_frame(
            json.dumps({"id": i}).encode(), payload) for i in (1, 2)]
        for i, data in zip((1, 2), frames):
            frame = read_frame_bytes(data)
            assert frame["id"] == i
            assert bytes(frame.payloads[0]) == b"shared"

    def test_eof_between_frames_is_eoferror(self):
        with pytest.raises(EOFError):
            read_frame_bytes(b"")

    def test_truncated_binary_body_is_eoferror(self):
        data = protocol.encode_binary({"id": 1}, [b"abcdef"])
        for cut in (3, len(data) - 1):
            with pytest.raises(EOFError):
                read_frame_bytes(data[:cut])

    def test_oversize_declared_frame_is_typed(self):
        head = struct.pack(">4sII", protocol.BINARY_MAGIC,
                           protocol.MAX_FRAME_BYTES, 1024)
        with pytest.raises(ShardProtocolError, match="exceeds"):
            read_frame_bytes(head)

    def test_garbage_header_json_is_typed(self):
        data = protocol.binary_frame(b"not json", protocol.encode_payload([]))
        with pytest.raises(ShardProtocolError, match="malformed"):
            read_frame_bytes(data)
        data = protocol.binary_frame(b"[1,2]", protocol.encode_payload([]))
        with pytest.raises(ShardProtocolError, match="JSON object"):
            read_frame_bytes(data)

    def test_corrupt_payload_section_is_typed(self):
        header = b'{"id":1}'
        # Declares one buffer of 100 bytes but supplies 3.
        bad = struct.pack(">II", 1, 100) + b"abc"
        with pytest.raises(ShardProtocolError, match="truncated"):
            read_frame_bytes(protocol.binary_frame(header, bad))
        # Trailing bytes past the declared buffers.
        good = protocol.encode_payload([b"ok"])
        with pytest.raises(ShardProtocolError, match="trailing"):
            read_frame_bytes(protocol.binary_frame(header, good + b"junk"))
        # Absurd buffer count.
        bomb = struct.pack(">I", protocol.MAX_PAYLOAD_BUFFERS + 1)
        with pytest.raises(ShardProtocolError, match="buffers"):
            read_frame_bytes(protocol.binary_frame(header, bomb))

    def test_overlong_json_line_is_typed(self):
        data = b'{"pad":"' + b"x" * protocol.MAX_LINE_BYTES + b'"}\n'
        with pytest.raises(ShardProtocolError, match="bytes"):
            read_frame_bytes(data)


# ------------------------------------------------------- codec negotiation
class TestNegotiation:
    def test_supported_codecs_by_knob(self):
        if arrays.HAVE_NUMPY:
            assert protocol.supported_codecs("auto") == ["binary", "json"]
            assert protocol.supported_codecs("binary") == ["binary", "json"]
        assert protocol.supported_codecs("json") == ["json"]
        with pytest.raises(ValueError):
            protocol.supported_codecs("msgpack")

    def test_no_numpy_build_offers_json_only(self, monkeypatch):
        monkeypatch.setattr(arrays, "HAVE_NUMPY", False)
        assert not protocol.binary_supported()
        for knob in protocol.WIRE_FORMATS:
            assert protocol.supported_codecs(knob) == ["json"]

    def test_choose_codec_prefers_client_order(self):
        both = ["binary", "json"]
        assert protocol.choose_codec(both, both) == "binary"
        assert protocol.choose_codec(["json"], both) == "json"
        assert protocol.choose_codec(both, ["json"]) == "json"

    def test_choose_codec_degrades_on_legacy_or_junk(self):
        both = ["binary", "json"]
        assert protocol.choose_codec(None, both) == "json"       # old peer
        assert protocol.choose_codec("binary", both) == "json"   # junk type
        assert protocol.choose_codec(["msgpack"], both) == "json"


# ---------------------------------------------------------- packed codecs
@needs_numpy
class TestBinaryCodecs:
    def test_tasks_roundtrip_matches_json_codec(self):
        metas, buffers = protocol.encode_tasks_binary(TASKS)
        views = [memoryview(buf) for buf in buffers]
        decoded = protocol.decode_tasks_binary(metas, views)
        expected = [protocol.decode_task(protocol.encode_task(t))
                    for t in TASKS]
        assert decoded == expected
        # Exact shapes: ints (not numpy scalars), tuple combos.
        for task in decoded:
            if task[0] == "probe":
                assert all(type(v) is int for v in task[1] + task[2])
            else:
                assert all(type(combo) is tuple for combo in task[2])
                assert all(type(v) is int for combo in task[2]
                           for v in combo)

    def test_responses_roundtrip_matches_json_codec(self):
        metas, buffers = protocol.encode_shard_responses_binary(
            KINDS, RESPONSES)
        views = [memoryview(buf) for buf in buffers]
        decoded = protocol.decode_shard_responses_binary(
            metas, views, expected_kinds=KINDS)
        expected = [protocol.decode_shard_response(
            kind, json.loads(json.dumps(
                protocol.encode_shard_response(kind, response))))
            for kind, response in zip(KINDS, RESPONSES)]
        assert decoded == expected
        checked, pairs = decoded[0]
        assert type(checked) is int
        assert all(type(pair) is tuple for pair in pairs)
        for w, flags in decoded[2][0]:
            assert type(w) is int
            assert all(type(f) is bool for pair in flags for f in pair)

    def test_packed_fetch_info_roundtrip(self):
        """The dominant wire cost: a fetch info dict whose keys are the
        payload's distinct ids, values mixing the ``<label>_<n>``
        template, plain ints, None, and oddballs — must take the packed
        path and decode to the identical dict."""
        response = ([[10, 11], [11, 30]],
                    {10: ("movie", "movie_7"), 11: ("year", 1984),
                     30: ("award", None)})
        metas, buffers = protocol.encode_shard_responses_binary(
            ["fetch"], [response])
        assert len(metas[0]) == 7  # packed form, not JSON triples
        [decoded] = protocol.decode_shard_responses_binary(
            metas, [memoryview(b) for b in buffers],
            expected_kinds=["fetch"])
        assert decoded == ([[10, 11], [11, 30]], response[1])
        # Values the template can't express ride the JSON escape hatch.
        odd = ([[5]], {5: ("movie", "movie_007")})  # leading zero
        metas, buffers = protocol.encode_shard_responses_binary(
            ["fetch"], [odd])
        assert len(metas[0]) == 7
        [decoded] = protocol.decode_shard_responses_binary(
            metas, buffers, expected_kinds=["fetch"])
        assert decoded == ([[5]], odd[1])

    def test_fetch_info_fallback_when_keys_diverge(self):
        """Info keys that aren't the distinct payload ids (nothing the
        engine produces, but the codec must not corrupt them) fall back
        to JSON triples."""
        response = ([[1, 2]], {9: ("movie", "x")})
        metas, buffers = protocol.encode_shard_responses_binary(
            ["fetch"], [response])
        assert len(metas[0]) == 4  # fallback form
        [decoded] = protocol.decode_shard_responses_binary(
            metas, buffers, expected_kinds=["fetch"])
        assert decoded == ([[1, 2]], {9: ("movie", "x")})

    def test_kind_mismatch_is_typed(self):
        metas, buffers = protocol.encode_shard_responses_binary(
            ["probe"], [RESPONSES[0]])
        with pytest.raises(ShardProtocolError, match="expected"):
            protocol.decode_shard_responses_binary(
                metas, buffers, expected_kinds=["fetch"])

    def test_size_lies_are_typed(self):
        metas, buffers = protocol.encode_tasks_binary(
            [("fetch", 0, [(1, 2), (3, 4)])])
        metas[0][2] = 7  # claim 7 combos; the buffer holds 2x2 ints
        with pytest.raises(ShardProtocolError):
            protocol.decode_tasks_binary(metas, buffers)

    def test_missing_buffer_reference_is_typed(self):
        with pytest.raises(ShardProtocolError):
            protocol.decode_tasks_binary([["probe", ["i8", 5], ["i8", 6]]],
                                         [])


# ------------------------------------------------------ encode-once cache
@needs_numpy
class TestScatterEncoder:
    def test_heavy_parts_encoded_once_per_key(self):
        encoder = _ScatterEncoder(TASKS)
        key = (0, 1, 2, 3)
        assert encoder._json_fragment(key) is encoder._json_fragment(key)
        assert encoder._binary_parts(key) is encoder._binary_parts(key)

    def test_spliced_frames_decode_per_codec(self):
        encoder = _ScatterEncoder(TASKS)
        key = (1, 3)
        expected = [protocol.decode_task(protocol.encode_task(TASKS[i]))
                    for i in key]
        for shard_id in (0, 1):
            envelope = {"id": shard_id + 1, "op": "scatter"}
            frame = read_frame_bytes(
                encoder.encode(protocol.CODEC_BINARY, key, dict(envelope)))
            assert frame["id"] == shard_id + 1 and frame.binary
            assert protocol.decode_tasks_binary(
                frame["tasks_meta"], frame.payloads) == expected
            frame = read_frame_bytes(
                encoder.encode(protocol.CODEC_JSON, key, dict(envelope)))
            assert frame["id"] == shard_id + 1 and not frame.binary
            assert [protocol.decode_task(doc)
                    for doc in frame["tasks"]] == expected


# ------------------------------------------------------------ live sockets
@pytest.fixture(scope="module")
def artifact(tmp_path_factory, imdb_small):
    graph, schema = imdb_small
    path = tmp_path_factory.mktemp("wire") / "artifact"
    with connect((graph, schema)) as engine:
        engine.prepare(CHEAP)
        engine.save(path, shards=2)
    return path


def answers(engine):
    run = engine.query(CHEAP)
    return sorted(tuple(sorted(m.items())) for m in run.answer)


class TestLiveNegotiation:
    def test_binary_client_negotiates_down_to_json_server(self, artifact):
        """Mixed-version interop: a binary-preferring front-end against a
        JSON-only fleet transparently lands on JSON, answers intact."""
        with connect(artifact, strategy="scatter") as inline:
            expected = answers(inline)
        servers = [ShardServer(artifact / f"shard-{i:04d}",
                               wire_format="json").start()
                   for i in range(2)]
        try:
            with connect(artifact, backend="remote",
                         shard_addrs=[s.address for s in servers],
                         wire_format="auto") as remote:
                assert remote._shards.wire_codec == protocol.CODEC_JSON
                assert answers(remote) == expected
                for server in servers:
                    assert server.codec_negotiations.get("json", 0) >= 1
                    assert server.binary_frames_received == 0
        finally:
            for server in servers:
                server.stop()

    @needs_numpy
    def test_auto_negotiates_binary_and_counts_bytes(self, artifact):
        with connect(artifact, strategy="scatter") as inline:
            expected = answers(inline)
        servers = [ShardServer(artifact / f"shard-{i:04d}").start()
                   for i in range(2)]
        try:
            with connect(artifact, backend="remote",
                         shard_addrs=[s.address for s in servers]) as remote:
                assert remote._shards.wire_codec == protocol.CODEC_BINARY
                assert answers(remote) == expected
                stats = remote._shards.wire_stats()
                assert [s["codec"] for s in stats] == ["binary", "binary"]
                assert all(s["bytes_sent"] > 0 and s["bytes_received"] > 0
                           for s in stats)
            assert any(s.binary_frames_received > 0 for s in servers)
        finally:
            for server in servers:
                server.stop()

    @needs_numpy
    def test_strict_binary_rejects_json_only_server(self, artifact):
        server = ShardServer(artifact / "shard-0000",
                             wire_format="json").start()
        try:
            with pytest.raises(ShardHandshakeMismatch, match="codec"):
                connect(artifact, backend="remote",
                        shard_addrs=[server.address, server.address],
                        wire_format="binary", retries=0)
        finally:
            server.stop()

    def test_no_numpy_build_negotiates_json(self, artifact, monkeypatch):
        """A front-end without numpy must land on JSON even against a
        binary-capable fleet — whatever the knob says — and still get
        identical answers."""
        servers = [ShardServer(artifact / f"shard-{i:04d}").start()
                   for i in range(2)]
        monkeypatch.setattr(arrays, "HAVE_NUMPY", False)
        try:
            with connect(artifact, backend="remote",
                         shard_addrs=[s.address for s in servers],
                         wire_format="binary") as remote:
                assert remote._shards.wire_codec == protocol.CODEC_JSON
                assert remote.query(CHEAP).answer is not None
        finally:
            for server in servers:
                server.stop()


class TestLiveMalformedFrames:
    def _exchange(self, server, data: bytes) -> dict:
        with socket.create_connection((server.host, server.port),
                                      timeout=10) as sock:
            sock.sendall(data)
            reader = sock.makefile("rb")
            response = protocol.decode(reader.readline())
            assert reader.readline() == b""  # server hung up
        return response

    def test_bad_payload_section_typed_then_closed(self, artifact):
        server = ShardServer(artifact / "shard-0000").start()
        try:
            bad = protocol.binary_frame(
                b'{"op":"ping"}', struct.pack(">II", 1, 999) + b"short")
            response = self._exchange(server, bad)
            assert response["ok"] is False
            assert response["error"] == "ShardProtocolError"
        finally:
            server.stop()

    def test_oversize_binary_frame_typed_then_closed(self, artifact):
        server = ShardServer(artifact / "shard-0000").start()
        try:
            head = struct.pack(">4sII", protocol.BINARY_MAGIC,
                               protocol.MAX_FRAME_BYTES, 64)
            response = self._exchange(server, head)
            assert response["ok"] is False
            assert response["error"] == "ShardProtocolError"
            assert "exceeds" in response["message"]
        finally:
            server.stop()

    def test_truncated_binary_frame_no_hang(self, artifact):
        """A client that dies mid-binary-frame must not wedge the
        handler; the server treats it as a clean EOF."""
        servers = [ShardServer(artifact / f"shard-{i:04d}").start()
                   for i in range(2)]
        try:
            data = protocol.encode_binary({"op": "ping"}, [b"abcdef"])
            with socket.create_connection((servers[0].host,
                                           servers[0].port),
                                          timeout=10) as sock:
                sock.sendall(data[:len(data) - 2])
            # The connection above closed mid-frame; the server must
            # still answer fresh connections promptly.
            with connect(artifact, backend="remote",
                         shard_addrs=[s.address for s in servers],
                         connect_timeout=5.0) as remote:
                assert remote.query(CHEAP).answer is not None
        finally:
            for server in servers:
                server.stop()

    def test_client_wraps_protocol_error_with_addr(self, artifact):
        """A shard speaking garbage binary framing surfaces to the
        front-end as a typed error naming the shard, not a hang."""
        def handler(conn):
            try:
                reader = conn.makefile("rb")
                while True:
                    protocol.read_frame(reader)
                    conn.sendall(protocol.binary_frame(
                        b"not json", protocol.encode_payload([])))
            except (OSError, EOFError, ShardProtocolError):
                conn.close()

        from tests.test_remote import fake_shard_server
        addr, close = fake_shard_server(handler)
        try:
            with pytest.raises((ShardProtocolError, ShardUnavailable)):
                connect(artifact, backend="remote",
                        shard_addrs=[addr, addr], retries=0,
                        connect_timeout=2.0)
        finally:
            close()
