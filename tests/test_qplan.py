"""Tests for QPlan / sQPlan — plan generation and the cost model."""

import math

import pytest

from repro import AccessConstraint, AccessSchema, Pattern, qplan, sqplan
from repro.core.plan import EDGE_VIA_INDEX, EDGE_VIA_PROBE
from repro.errors import NotEffectivelyBounded


class TestQ0Plan:
    """Example 1/6: the exact arithmetic of the paper's Q0 plan."""

    def test_worst_case_nodes_17923(self, q0, a0_schema):
        plan = qplan(q0, a0_schema)
        assert plan.worst_case_nodes_fetched == 17923

    def test_worst_case_edges_35136(self, q0, a0_schema):
        plan = qplan(q0, a0_schema)
        assert plan.worst_case_edges_checked == 35136

    def test_worst_case_gq_17791(self, q0, a0_schema):
        plan = qplan(q0, a0_schema)
        assert plan.worst_case_gq_nodes == 17791

    def test_six_fetch_operations(self, q0, a0_schema):
        """Example 6: P has 6 fetching operations."""
        plan = qplan(q0, a0_schema)
        assert len(plan.ops) == 6

    def test_candidate_bounds_per_node(self, q0, a0_schema):
        """Example 6: cmat bounds 24, 3, 288, 8640, 8640, 196."""
        plan = qplan(q0, a0_schema)
        bounds = {q0.label_of(u): plan.size_bound(u) for u in q0.nodes()}
        assert bounds == {"award": 24, "year": 3, "movie": 288,
                          "actor": 8640, "actress": 8640, "country": 196}

    def test_ops_ordered_for_execution(self, q0, a0_schema):
        plan = qplan(q0, a0_schema)
        seen = set()
        for op in plan.ops:
            assert all(src in seen for src in op.source_nodes)
            seen.add(op.target)

    def test_range_hints_disabled(self, q0, a0_schema):
        plan = qplan(q0, a0_schema, use_range_hints=False)
        # Without the 2011-2013 hint, year contributes 135 candidates,
        # movies 24*135*4, etc.
        assert plan.size_bound(1) == 135
        assert plan.size_bound(2) == 24 * 135 * 4

    def test_describe_renders(self, q0, a0_schema):
        text = qplan(q0, a0_schema).describe()
        assert "ft(" in text and "worst case" in text
        assert "17923" in text


class TestQ2Plan:
    def test_example11_counts(self, q2, a1_schema):
        """Example 11: 8 candidate nodes, 12 edge examinations."""
        plan = sqplan(q2, a1_schema)
        assert plan.worst_case_gq_nodes == 8
        assert plan.worst_case_edges_checked == 12

    def test_example11_per_node(self, q2, a1_schema):
        plan = sqplan(q2, a1_schema)
        by_label = {q2.label_of(u): plan.size_bound(u) for u in q2.nodes()}
        assert by_label == {"A": 4, "B": 2, "C": 1, "D": 1}

    def test_q1_simulation_plan_rejected(self, q1, a1_schema):
        with pytest.raises(NotEffectivelyBounded):
            sqplan(q1, a1_schema)

    def test_q1_subgraph_plan_exists(self, q1, a1_schema):
        assert qplan(q1, a1_schema).worst_case_gq_nodes < math.inf


class TestPlanStructure:
    def test_unbounded_raises_with_diagnostics(self, q0):
        with pytest.raises(NotEffectivelyBounded) as info:
            qplan(q0, AccessSchema())
        assert info.value.uncovered_nodes

    def test_uncovered_edge_raises(self):
        p = Pattern()
        a = p.add_node("A")
        b = p.add_node("B")
        p.add_edge(a, b)
        # Both nodes covered by type (1), but nothing covers the edge.
        schema = AccessSchema([AccessConstraint((), "A", 5),
                               AccessConstraint((), "B", 5)])
        with pytest.raises(NotEffectivelyBounded) as info:
            qplan(p, schema)
        assert (a, b) in info.value.uncovered_edges

    def test_probe_fallback_when_allowed(self):
        p = Pattern()
        a = p.add_node("A")
        b = p.add_node("B")
        p.add_edge(a, b)
        schema = AccessSchema([AccessConstraint((), "A", 5),
                               AccessConstraint((), "B", 7)])
        plan = qplan(p, schema, allow_probe_edges=True)
        assert plan.edge_checks[0].mode == EDGE_VIA_PROBE
        assert plan.edge_checks[0].cost_bound == 35

    def test_reduction_ops_appended(self):
        """A node reachable two ways gets a second, cheaper fetch."""
        p = Pattern()
        a = p.add_node("A")
        b = p.add_node("B")
        c = p.add_node("C")
        p.add_edge(a, c)
        p.add_edge(b, c)
        schema = AccessSchema([
            AccessConstraint((), "A", 100),
            AccessConstraint((), "B", 2),
            AccessConstraint((), "C", 1000),
            AccessConstraint(("A",), "C", 5),
            AccessConstraint(("B",), "C", 3),
        ])
        plan = qplan(p, schema)
        ops_for_c = plan.ops_for(c)
        assert len(ops_for_c) >= 2              # type (1) + reduction
        assert plan.size_bound(c) == 6          # 2 * 3 via B
        assert plan.final_op_for(c).source_nodes == (b,)

    def test_final_op_for_missing_node(self, q0, a0_schema):
        plan = qplan(q0, a0_schema)
        with pytest.raises(KeyError):
            plan.final_op_for(99)

    def test_constraints_used(self, q0, a0_schema):
        plan = qplan(q0, a0_schema)
        used = plan.constraints_used()
        assert all(c in a0_schema for c in used)
        targets = {c.target for c in used}
        assert {"movie", "actor", "actress", "country", "year", "award"} >= targets

    def test_edge_checks_cover_all_edges(self, q0, a0_schema):
        plan = qplan(q0, a0_schema)
        assert {check.edge for check in plan.edge_checks} == set(q0.edges())
        assert all(check.mode == EDGE_VIA_INDEX for check in plan.edge_checks)

    def test_edge_check_includes_other_endpoint(self, q0, a0_schema):
        """Regression: the non-target endpoint must sit in source_nodes."""
        plan = qplan(q0, a0_schema)
        for check in plan.edge_checks:
            a, b = check.edge
            other = a if check.fetch_target == b else b
            assert other in check.source_nodes


class TestWorstCaseOptimality:
    def test_picks_cheaper_source(self):
        """Two possible anchors with different bounds: QPlan must fetch
        through the smaller one (worst-case optimality)."""
        p = Pattern()
        a = p.add_node("A")
        b = p.add_node("B")
        c = p.add_node("C")
        p.add_edge(a, c)
        p.add_edge(b, c)
        schema = AccessSchema([
            AccessConstraint((), "A", 50),
            AccessConstraint((), "B", 3),
            AccessConstraint(("A",), "C", 4),
            AccessConstraint(("B",), "C", 4),
        ])
        plan = qplan(p, schema)
        assert plan.final_op_for(c).source_nodes == (b,)
        assert plan.size_bound(c) == 12

    def test_multi_label_source_selection(self):
        """With S = {A, B} and two A-nodes of different bounds, the
        cheaper A is chosen for the S-labeled set."""
        p = Pattern()
        a1 = p.add_node("A")
        a2 = p.add_node("A")
        b = p.add_node("B")
        c = p.add_node("C")
        p.add_edge(a1, c)
        p.add_edge(a2, c)
        p.add_edge(b, c)
        schema = AccessSchema([
            AccessConstraint((), "A", 10),
            AccessConstraint((), "B", 2),
            AccessConstraint(("A", "B"), "C", 3),
        ])
        # a1 gets an equality predicate -> range hint size 1.
        from repro import Predicate
        p.set_predicate(a1, Predicate.of(("=", 7)))
        plan = qplan(p, schema)
        final = plan.final_op_for(c)
        assert a1 in final.source_nodes          # hint makes a1 cheaper
        assert plan.size_bound(c) == 3 * 1 * 2
