"""Concurrent execution against one frozen engine session.

The serving subsystem's whole premise is that a frozen
:class:`~repro.engine.engine.QueryEngine` is safe to hammer from a
thread pool; these tests pin that contract down:

* N threads querying one engine get answers identical to sequential
  execution, across both semantics, including the race on plan
  compilation (fresh engine, no pre-warm);
* the :class:`~repro.constraints.index.FrozenConstraintIndex` lazy
  buffer decode publishes exactly once under concurrent first-touch
  (regression test for the decode race).
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.constraints.index import FrozenConstraintIndex
from repro.constraints.schema import AccessConstraint
from repro.core.actualized import SIMULATION, SUBGRAPH
from repro.core.ebchk import is_effectively_bounded
from repro.engine import QueryEngine
from repro.graph import Graph
from repro.matching.simulation import relation_pairs
from repro.pattern.generator import PatternGenerator

THREADS = 8


def _canonical(run, semantics):
    """Order-independent form of an answer for equality comparison."""
    if semantics == SUBGRAPH:
        return sorted(tuple(sorted(match.items())) for match in run.answer)
    return sorted(relation_pairs(run.answer))


@pytest.fixture(scope="module")
def workload(imdb_small):
    """Bounded (pattern, semantics) pairs over the small IMDb stand-in."""
    graph, schema = imdb_small
    generator = PatternGenerator.from_graph(graph,
                                            rng=random.Random(1105),
                                            schema=schema)
    pairs = []
    for query in generator.generate_many(60):
        for semantics in (SUBGRAPH, SIMULATION):
            if is_effectively_bounded(query, schema, semantics).bounded:
                pairs.append((query, semantics))
    pairs = pairs[:16]
    assert len(pairs) >= 8, "workload generator must yield bounded queries"
    return pairs


def test_threaded_queries_match_sequential(imdb_small, workload):
    graph, schema = imdb_small
    reference = QueryEngine.open(graph, schema)
    expected = [_canonical(reference.query(q, sem), sem)
                for q, sem in workload]

    # A fresh engine: worker threads also race EBChk/QPlan compilation
    # and the first-execution answer memo, not just cached reads.
    engine = QueryEngine.open(graph, schema)

    def hammer(seed: int):
        rng = random.Random(seed)
        order = list(enumerate(workload))
        rng.shuffle(order)
        results = {}
        for index, (query, semantics) in order:
            run = engine.query(query, semantics,
                               refresh=bool(rng.getrandbits(1)))
            results[index] = _canonical(run, semantics)
        return results

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        all_results = list(pool.map(hammer, range(THREADS)))

    for results in all_results:
        for index, (query, semantics) in enumerate(workload):
            assert results[index] == expected[index], \
                f"thread answer diverged for {query!r} under {semantics}"

    # Accounting survived the stampede: every prepare was a hit or miss.
    stats = engine.stats
    assert stats.plan_cache_hits + stats.plan_cache_misses \
        == THREADS * len(workload)


def test_threaded_batches_match_sequential(imdb_small, workload):
    graph, schema = imdb_small
    reference = QueryEngine.open(graph, schema)
    expected = [_canonical(reference.query(q, sem), sem)
                for q, sem in workload]
    engine = QueryEngine.open(graph, schema)

    def hammer_batch(seed: int):
        rng = random.Random(seed)
        order = list(enumerate(workload))
        rng.shuffle(order)
        runs = engine.query_batch([(q, sem) for _, (q, sem) in order])
        return {index: _canonical(run, semantics)
                for (index, (_, semantics)), run in zip(order, runs)}

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        for results in pool.map(hammer_batch, range(THREADS)):
            for index in range(len(workload)):
                assert results[index] == expected[index]


def _year_index_fixture():
    """A small graph + constraint whose frozen index has several keys."""
    graph = Graph()
    years = [graph.add_node("year", value=2000 + i) for i in range(4)]
    for m in range(40):
        movie = graph.add_node("movie")
        graph.add_edge(movie, years[m % len(years)])
    constraint = AccessConstraint(("year",), "movie", 40)
    return graph, constraint


def test_frozen_index_lazy_decode_race(monkeypatch):
    """Concurrent first-touch of a buffer-backed index decodes once and
    every thread sees the complete entry mapping."""
    graph, constraint = _year_index_fixture()
    eager = FrozenConstraintIndex(constraint, graph)
    buffers = eager.to_buffers()
    lazy = FrozenConstraintIndex.from_buffers(constraint, buffers)

    decode_calls = []
    original = FrozenConstraintIndex._decode_buffers

    def slow_decode(self):
        decode_calls.append(threading.get_ident())
        time.sleep(0.05)  # widen the race window
        return original(self)

    monkeypatch.setattr(FrozenConstraintIndex, "_decode_buffers",
                        slow_decode)

    keys = sorted(eager.keys())
    barrier = threading.Barrier(THREADS)
    results: list = [None] * THREADS
    errors: list = []

    def first_touch(slot: int) -> None:
        try:
            barrier.wait()
            results[slot] = [lazy.fetch(key) for key in keys]
        except Exception as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=first_touch, args=(slot,))
               for slot in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    assert len(decode_calls) == 1, \
        f"buffers decoded {len(decode_calls)} times; must publish once"
    expected = [eager.fetch(key) for key in keys]
    for slot in range(THREADS):
        assert results[slot] == expected
    # The buffers were released exactly once the entries were published.
    assert lazy._raw_buffers is None
