"""Tests for the dataset generators: enforced bounds, determinism, scaling."""

import pytest

from repro import SchemaIndex
from repro.graph.generators import (
    dbpedia_like,
    imdb_like,
    random_labeled_graph,
    web_like,
)
from repro.graph.generators import imdb as imdb_mod
from repro.graph.generators import web as web_mod


class TestImdb:
    def test_fixed_label_domains(self, imdb_small):
        graph, _ = imdb_small
        assert graph.label_count("year") == imdb_mod.NUM_YEARS
        assert graph.label_count("award") == imdb_mod.NUM_AWARDS
        assert graph.label_count("country") == imdb_mod.NUM_COUNTRIES
        assert graph.label_count("genre") == imdb_mod.NUM_GENRES
        assert graph.label_count("studio") == imdb_mod.NUM_STUDIOS

    def test_year_values_cover_paper_range(self, imdb_small):
        graph, _ = imdb_small
        values = {graph.value_of(v) for v in graph.nodes_with_label("year")}
        assert min(values) == 1880 and max(values) == 2014

    def test_c1_enforced(self, imdb_small):
        """Every (year, award) pair has at most 4 winning movies."""
        graph, _ = imdb_small
        for award in graph.nodes_with_label("award"):
            winners_by_year = {}
            for movie in graph.neighbors(award):
                if graph.label_of(movie) != "movie":
                    continue
                for other in graph.neighbors(movie):
                    if graph.label_of(other) == "year":
                        winners_by_year.setdefault(other, []).append(movie)
            for movies in winners_by_year.values():
                assert len(movies) <= imdb_mod.MAX_MOVIES_PER_YEAR_AWARD

    def test_one_country_per_person(self, imdb_small):
        graph, _ = imdb_small
        for label in ("actor", "actress", "director"):
            for person in graph.nodes_with_label(label):
                countries = [w for w in graph.neighbors(person)
                             if graph.label_of(w) == "country"]
                assert len(countries) == 1

    def test_cast_edges_bidirectional(self, imdb_small):
        graph, _ = imdb_small
        some_movie = next(iter(graph.nodes_with_label("movie")))
        for person in graph.out_neighbors(some_movie):
            if graph.label_of(person) in ("actor", "actress"):
                assert graph.has_edge(person, some_movie)

    def test_deterministic(self):
        a, _ = imdb_like(scale=0.01, seed=5)
        b, _ = imdb_like(scale=0.01, seed=5)
        assert set(a.edges()) == set(b.edges())

    def test_different_seeds_differ(self):
        a, _ = imdb_like(scale=0.01, seed=5)
        b, _ = imdb_like(scale=0.01, seed=6)
        assert set(a.edges()) != set(b.edges())

    def test_scaling(self):
        small, schema_small = imdb_like(scale=0.01, seed=1)
        large, schema_large = imdb_like(scale=0.03, seed=1)
        assert large.num_nodes > small.num_nodes
        # Schemas are identical across scales (bounds are constants).
        assert list(schema_small) == list(schema_large)


class TestDbpedia:
    def test_schema_satisfied_across_scales(self):
        for scale in (0.01, 0.03):
            graph, schema = dbpedia_like(scale=scale, seed=2)
            assert SchemaIndex(graph, schema).satisfied()

    def test_geography_backbone(self, dbpedia_small):
        graph, _ = dbpedia_small
        for city in graph.nodes_with_label("city"):
            countries = [w for w in graph.neighbors(city)
                         if graph.label_of(w) == "country"]
            assert len(countries) == 1

    def test_rare_types_small(self, dbpedia_small):
        graph, _ = dbpedia_small
        rare = [label for label in graph.labels()
                if label.startswith("rare_type_")]
        assert rare
        for label in rare:
            assert graph.label_count(label) <= 12

    def test_film_person_bidirectional(self, dbpedia_small):
        graph, _ = dbpedia_small
        checked = 0
        for film in graph.nodes_with_label("film"):
            for person in graph.out_neighbors(film):
                if graph.label_of(person) == "person":
                    assert graph.has_edge(person, film)
                    checked += 1
            if checked > 20:
                break
        assert checked > 0


class TestWeb:
    def test_zipfian_domains(self, web_small):
        graph, _ = web_small
        sizes = sorted((graph.label_count(f"dom_{i}")
                        for i in range(web_mod.NUM_DOMAINS)), reverse=True)
        assert sizes[0] > 10 * sizes[-1]  # heavy head, long tail

    def test_satellites(self, web_small):
        graph, _ = web_small
        some_page = next(iter(graph.nodes_with_label("dom_0")))
        neighbours_by_label = {}
        for w in graph.neighbors(some_page):
            neighbours_by_label.setdefault(graph.label_of(w), []).append(w)
        assert len(neighbours_by_label.get("site", [])) == 1
        assert len(neighbours_by_label.get("registrar", [])) == 1
        assert 1 <= len(neighbours_by_label.get("category", [])) <= \
            web_mod.MAX_CATEGORIES_PER_PAGE

    def test_tail_type1_constraints_valid_across_scales(self):
        """Declared tail bounds use the base population, so one schema
        holds for every scale <= 1."""
        _, schema = web_like(scale=0.05, seed=1)
        smaller, _ = web_like(scale=0.02, seed=1)
        for constraint in schema:
            if constraint.is_type1 and constraint.target.startswith("dom_"):
                assert smaller.label_count(constraint.target) <= constraint.bound

    def test_schema_satisfied(self, web_small):
        graph, schema = web_small
        assert SchemaIndex(graph, schema).satisfied()


class TestRandomGraphs:
    def test_shape(self):
        graph = random_labeled_graph(50, 4, 120, seed=3)
        assert graph.num_nodes == 50
        assert graph.num_edges <= 120
        assert len(graph.labels()) <= 4

    def test_no_values_option(self):
        graph = random_labeled_graph(10, 2, 10, seed=3, value_range=None)
        assert all(graph.value_of(v) is None for v in graph.nodes())

    def test_deterministic(self):
        a = random_labeled_graph(30, 3, 60, seed=8)
        b = random_labeled_graph(30, 3, 60, seed=8)
        assert set(a.edges()) == set(b.edges())

    def test_tiny_graph_no_edges(self):
        graph = random_labeled_graph(1, 1, 5, seed=0)
        assert graph.num_edges == 0
