"""Tests for the random pattern-query generator (the Section VII workload)."""

import random

import pytest

from repro.errors import PatternError
from repro.pattern.generator import PatternGenerator


@pytest.fixture(scope="module")
def imdb_generator():
    from repro.graph.generators import imdb_like
    graph, _ = imdb_like(scale=0.02, seed=1)
    return PatternGenerator.from_graph(graph, rng=random.Random(42))


class TestGeneration:
    def test_default_ranges(self, imdb_generator):
        for _ in range(20):
            q = imdb_generator.generate()
            assert 1 <= q.num_nodes <= 7
            assert q.num_edges >= 1

    def test_explicit_knobs(self, imdb_generator):
        q = imdb_generator.generate(num_nodes=5, num_edges=6, num_predicates=3)
        assert q.num_nodes <= 5
        # Edge count can fall short when label adjacency forbids extras,
        # but never exceeds the request.
        assert q.num_edges <= 6

    def test_connected(self, imdb_generator):
        for _ in range(20):
            assert imdb_generator.generate().is_connected()

    def test_labels_exist_in_data(self, imdb_generator):
        valid = {la for la, _ in imdb_generator.label_edges}
        valid |= {lb for _, lb in imdb_generator.label_edges}
        q = imdb_generator.generate(num_nodes=6)
        for u in q.nodes():
            assert q.label_of(u) in valid

    def test_edges_respect_label_adjacency(self, imdb_generator):
        allowed = set(imdb_generator.label_edges)
        for _ in range(10):
            q = imdb_generator.generate()
            for (a, b) in q.edges():
                assert (q.label_of(a), q.label_of(b)) in allowed

    def test_predicates_satisfiable(self, imdb_generator):
        for _ in range(20):
            q = imdb_generator.generate(num_predicates=5)
            q.validate()  # raises if any predicate is unsatisfiable

    def test_generate_many_names(self, imdb_generator):
        queries = imdb_generator.generate_many(5)
        assert [q.name for q in queries] == ["q0", "q1", "q2", "q3", "q4"]

    def test_deterministic_with_seed(self):
        from repro.graph.generators import imdb_like
        graph, _ = imdb_like(scale=0.02, seed=1)
        a = PatternGenerator.from_graph(graph, rng=random.Random(9)).generate_many(5)
        b = PatternGenerator.from_graph(graph, rng=random.Random(9)).generate_many(5)
        for qa, qb in zip(a, b):
            assert sorted(qa.label_of(u) for u in qa.nodes()) == \
                   sorted(qb.label_of(u) for u in qb.nodes())
            assert list(qa.edges()) == list(qb.edges())

    def test_single_node_allowed(self, imdb_generator):
        q = imdb_generator.generate(num_nodes=1, num_edges=1, num_predicates=0)
        assert q.num_nodes == 1

    def test_zero_nodes_rejected(self, imdb_generator):
        with pytest.raises(PatternError):
            imdb_generator.generate(num_nodes=0)


class TestConstruction:
    def test_empty_label_edges_rejected(self):
        with pytest.raises(PatternError):
            PatternGenerator([])

    def test_from_graph_value_samples(self):
        from repro.graph.generators import imdb_like
        graph, _ = imdb_like(scale=0.02, seed=1)
        gen = PatternGenerator.from_graph(graph)
        assert "year" in gen.value_samples
        assert all(isinstance(v, int) for v in gen.value_samples["year"])

    def test_edge_scan_cap(self):
        from repro.graph.generators import imdb_like
        graph, _ = imdb_like(scale=0.02, seed=1)
        gen = PatternGenerator.from_graph(graph, max_edge_scan=10)
        assert len(gen.label_edges) <= 10
