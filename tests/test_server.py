"""The concurrent query service (repro.server): service core, protocol,
TCP server + client, admission control, deadlines, metrics, hot reload."""

from __future__ import annotations

import threading

import pytest

from repro.core.actualized import SIMULATION, SUBGRAPH
from repro.engine import QueryEngine
from repro.errors import (
    AdmissionRejected,
    DeadlineExceeded,
    NotEffectivelyBounded,
    ServerError,
    ServiceOverloaded,
)
from repro.matching.simulation import relation_pairs
from repro.pattern import parse_pattern
from repro.server import QueryService, ServeClient, ServerThread
from repro.server import protocol
from repro.server.client import run_load

CHEAP = "m: movie; y: year; m -> y"


@pytest.fixture(scope="module")
def engine(imdb_small):
    graph, schema = imdb_small
    return QueryEngine.open(graph, schema)


@pytest.fixture(scope="module")
def server(imdb_small):
    """One shared unlimited-budget server for the happy-path tests."""
    graph, schema = imdb_small
    service = QueryService(QueryEngine.open(graph, schema), workers=2)
    with ServerThread(service) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with ServeClient(server.host, server.port) as c:
        yield c


# -- protocol ---------------------------------------------------------------
def test_protocol_roundtrip_typed_errors():
    for exc in (AdmissionRejected("too big", cost=100.0, budget=10.0),
                ServiceOverloaded("queue full", cost=5, budget=4),
                DeadlineExceeded("late", deadline_ms=25.0),
                NotEffectivelyBounded("nope", uncovered_nodes=[1],
                                      uncovered_edges=[(1, 2)]),
                ServerError("boom")):
        doc = protocol.decode(protocol.encode(
            protocol.error_response(7, exc)))
        assert doc["id"] == 7 and doc["ok"] is False
        with pytest.raises(type(exc)) as caught:
            protocol.raise_error(doc)
        if isinstance(exc, AdmissionRejected):
            assert caught.value.cost == exc.cost
            assert caught.value.budget == exc.budget
        if isinstance(exc, DeadlineExceeded):
            assert caught.value.deadline_ms == exc.deadline_ms
        if isinstance(exc, NotEffectivelyBounded):
            assert caught.value.uncovered_edges == ((1, 2),)


def test_protocol_decode_rejects_junk():
    with pytest.raises(ServerError):
        protocol.decode(b"not json\n")
    with pytest.raises(ServerError):
        protocol.decode(b"[1, 2]\n")


def test_protocol_unknown_error_degrades_to_server_error():
    with pytest.raises(ServerError, match="FutureError"):
        protocol.raise_error({"ok": False, "error": "FutureError",
                              "message": "from a newer server"})


# -- service core -----------------------------------------------------------
def test_service_requires_frozen_engine(imdb_small):
    graph, schema = imdb_small
    mutable = QueryEngine.open(graph.thaw() if hasattr(graph, "thaw")
                               else graph, schema, frozen=False)
    with pytest.raises(ServerError, match="frozen"):
        QueryService(mutable)


def test_admission_over_budget_is_typed_and_unexecuted(engine):
    service = QueryService(engine, max_cost=1.0)
    accessed_before = engine.stats.total_accessed
    with pytest.raises(AdmissionRejected) as caught:
        service.admit(CHEAP)
    assert caught.value.cost > caught.value.budget == 1.0
    assert engine.stats.total_accessed == accessed_before, \
        "a rejected query must not touch the data graph"
    snapshot = service.metrics.snapshot()
    assert snapshot["rejected"]["over_budget"] == 1
    assert snapshot["admitted"] == 0


def test_admission_unbounded_is_rejected(engine):
    service = QueryService(engine)
    with pytest.raises(NotEffectivelyBounded):
        service.admit("a: actor; b: actor; a -> b")
    assert service.metrics.snapshot()["rejected"]["unbounded"] == 1


def test_execute_batch_dedups_and_isolates_failures(engine):
    service = QueryService(engine)
    admitted = [service.admit(CHEAP), service.admit(CHEAP),
                service.admit(CHEAP, semantics=SIMULATION)]
    bodies = service.execute_batch(admitted)
    assert bodies[0] == bodies[1]
    assert bodies[0]["semantics"] == SUBGRAPH
    assert bodies[2]["semantics"] == SIMULATION
    assert bodies[0]["answer_count"] > 0


# -- end-to-end over TCP ----------------------------------------------------
def test_query_matches_direct_engine(client, engine):
    result = client.query(CHEAP, limit=10_000)
    direct = engine.query(parse_pattern(CHEAP))
    assert result.answer_count == len(direct.answer)
    assert result.cost == pytest.approx(
        engine.prepare(parse_pattern(CHEAP)).worst_case_total_accessed)
    served = sorted(tuple(sorted(m.items())) for m in result.matches)
    expected = sorted(tuple(sorted(m.items())) for m in direct.answer)
    assert served == expected


def test_query_simulation_pairs(client, engine):
    result = client.query(CHEAP, semantics=SIMULATION, limit=10_000)
    direct = engine.query(parse_pattern(CHEAP), SIMULATION)
    assert sorted(result.matches) == sorted(relation_pairs(direct.answer))


def test_query_accepts_pattern_objects(client):
    pattern = parse_pattern(CHEAP)
    assert client.query(pattern).answer_count \
        == client.query(CHEAP).answer_count


def test_answer_limit_caps_payload_not_count(client):
    result = client.query(CHEAP, limit=3)
    assert len(result.matches) == 3
    assert result.answer_count > 3


def test_unbounded_query_travels_typed(client):
    with pytest.raises(NotEffectivelyBounded):
        client.query("a: actor; b: actor; a -> b")


def test_malformed_pattern_is_an_error_response(client):
    with pytest.raises(ServerError):
        client.query("this is not the DSL")
    with pytest.raises(ServerError):
        client.query("")


def test_bad_request_fields_are_typed_errors(client):
    """Unvalidated field types must become typed error responses for
    that request only, never worker-thread crashes that poison batches."""
    with pytest.raises(ServerError, match="integer"):
        client.query(CHEAP, limit="5")
    with pytest.raises(ServerError, match="number"):
        client.query(CHEAP, deadline_ms="fast")
    assert client.query(CHEAP).answer_count > 0  # connection still fine


def test_oversized_line_answers_typed_then_closes(server):
    """A request line past the stream limit gets a typed error response
    (the framing-violation class, ``ShardProtocolError``) and a clean
    close — not an unhandled exception in the handler."""
    import socket

    with socket.create_connection((server.host, server.port),
                                  timeout=10) as sock:
        sock.sendall(b'{"op": "ping", "padding": "'
                     + b"x" * (protocol.MAX_LINE_BYTES + 1024) + b'"}\n')
        reader = sock.makefile("rb")
        response = protocol.decode(reader.readline())
        assert response["ok"] is False
        assert response["error"] == "ShardProtocolError"
        assert "bytes" in response["message"]
        assert reader.readline() == b""  # server hung up


def test_expired_deadline_is_typed(client):
    with pytest.raises(DeadlineExceeded):
        client.query(CHEAP, deadline_ms=0.0001)


def test_ping_and_metrics_endpoint(client):
    assert client.ping() is True
    client.query(CHEAP)
    snapshot = client.metrics()
    assert snapshot["answered"] >= 1
    assert snapshot["qps"] >= 0
    assert {"p50", "p90", "p99"} <= set(snapshot["latency_ms"])
    assert 0.0 <= snapshot["plan_cache"]["hit_rate"] <= 1.0
    assert snapshot["engine"]["nodes"] > 0
    assert snapshot["workers"] == 2


def test_concurrent_clients_over_tcp(server, engine):
    expected = len(engine.query(parse_pattern(CHEAP)).answer)
    report = run_load(server.host, server.port, [CHEAP],
                      requests=10, clients=4, limit=0)
    assert report["requests"] == 40
    assert report["answers"] == 40 * expected


def test_server_rejection_over_tcp(imdb_small):
    graph, schema = imdb_small
    service = QueryService(QueryEngine.open(graph, schema), max_cost=1.0,
                           workers=1)
    with ServerThread(service) as handle:
        with ServeClient(handle.host, handle.port) as c:
            with pytest.raises(AdmissionRejected) as caught:
                c.query(CHEAP)
            assert caught.value.budget == 1.0


def test_hot_reload_swaps_engine(imdb_small, tmp_path):
    graph, schema = imdb_small
    artifact = tmp_path / "artifact"
    compiled = QueryEngine.open(graph, schema)
    compiled.prepare(parse_pattern(CHEAP))
    compiled.save(artifact)

    service = QueryService(QueryEngine.open(graph, schema), workers=2)
    with ServerThread(service) as handle:
        with ServeClient(handle.host, handle.port) as c:
            before = c.query(CHEAP)
            info = c.reload(str(artifact))
            assert info["nodes"] == graph.num_nodes
            assert info["cached_plans"] >= 1
            after = c.query(CHEAP)
            assert after.answer_count == before.answer_count
            snapshot = c.metrics()
            assert snapshot["reloads"] == 1
            assert snapshot["engine"]["artifact"] == str(artifact)
    assert service.engine.artifact_path == artifact


def test_reload_failure_keeps_serving(server, client, tmp_path):
    with pytest.raises(ServerError):
        client.reload(str(tmp_path / "missing"))
    assert client.query(CHEAP).answer_count > 0


def test_clean_shutdown_drains(imdb_small):
    graph, schema = imdb_small
    service = QueryService(QueryEngine.open(graph, schema), workers=2)
    handle = ServerThread(service).start()
    with ServeClient(handle.host, handle.port) as c:
        c.query(CHEAP)
        assert c.shutdown() is True
    handle._thread.join(timeout=15)
    assert not handle._thread.is_alive(), "server thread must exit cleanly"
    with pytest.raises(ServerError):
        ServeClient(handle.host, handle.port, connect_timeout=0.3)


def test_overload_sheds_typed(imdb_small):
    """A service with a tiny queue and a blocked worker sheds load with
    ServiceOverloaded (a subclass of AdmissionRejected)."""
    graph, schema = imdb_small
    engine = QueryEngine.open(graph, schema)
    service = QueryService(engine, workers=1, max_queue=1, max_batch=1)
    release = threading.Event()
    original = service.execute_batch

    def slow_execute(requests):
        release.wait(timeout=10)
        return original(requests)

    service.execute_batch = slow_execute
    with ServerThread(service) as handle:
        results: list = []

        def fire():
            try:
                with ServeClient(handle.host, handle.port) as c:
                    results.append(c.query(CHEAP))
            except ServiceOverloaded as exc:
                results.append(exc)

        threads = [threading.Thread(target=fire) for _ in range(6)]
        for t in threads:
            t.start()
        # Let requests pile into the 1-slot queue, then unblock.
        for _ in range(200):
            if any(isinstance(r, ServiceOverloaded) for r in results):
                break
            threading.Event().wait(0.01)
        release.set()
        for t in threads:
            t.join(timeout=15)
    shed = [r for r in results if isinstance(r, ServiceOverloaded)]
    answered = [r for r in results if not isinstance(r, Exception)]
    assert shed, "at least one request must be shed under overload"
    assert answered, "non-shed requests must still be answered"
    assert service.metrics.snapshot()["rejected"]["overloaded"] >= len(shed)
