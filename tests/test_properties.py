"""Property-based tests (hypothesis) for the core invariants.

Strategy: draw random labeled graphs and random patterns, derive a schema
the graph satisfies by *discovery* (observed bounds always hold), then
assert the paper's central theorems empirically:

1. index fetch ≡ brute-force common-neighbour scan;
2. ``sVCov ⊆ VCov`` and ``sECov ⊆ ECov``;
3. EBChk "yes" ⇒ plan exists and ``Q(G_Q) = Q(G)`` for subgraph queries;
4. sEBChk "yes" ⇒ ``Q(G_Q) = Q(G)`` for simulation queries;
5. incremental index maintenance ≡ rebuild.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SchemaIndex, ebchk, execute_plan, qplan, sebchk, sqplan
from repro.constraints.discovery import discover_schema
from repro.core.covers import compute_covers
from repro.graph.generators import random_labeled_graph
from repro.matching.simulation import relation_pairs, simulate, simulation_holds
from repro.matching.vf2 import find_matches
from repro.pattern.generator import PatternGenerator

_SETTINGS = dict(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


@st.composite
def graph_and_pattern(draw, max_nodes=40, num_labels=4):
    seed = draw(st.integers(0, 10_000))
    num_nodes = draw(st.integers(8, max_nodes))
    num_edges = draw(st.integers(num_nodes, 3 * num_nodes))
    graph = random_labeled_graph(num_nodes, num_labels, num_edges,
                                 seed=seed, value_range=20)
    if graph.num_edges == 0:
        v = list(graph.nodes())
        graph.add_edge(v[0], v[1])
    rng = random.Random(seed + 1)
    generator = PatternGenerator.from_graph(graph, rng=rng)
    pattern = generator.generate(
        num_nodes=draw(st.integers(2, 4)),
        num_predicates=draw(st.integers(0, 2)))
    return graph, pattern, seed


@given(data=graph_and_pattern())
@settings(**_SETTINGS)
def test_index_fetch_equals_brute_force(data):
    graph, _, seed = data
    schema = discover_schema(graph, type1_max=1000, unit_max=1000)
    sx = SchemaIndex(graph, schema)
    assert sx.satisfied()
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    for constraint in list(schema)[:10]:
        index = sx.index_for(constraint)
        if constraint.is_type1:
            assert set(index.fetch(())) == set(
                graph.nodes_with_label(constraint.target))
            continue
        # Probe a few random S-labeled sets (existing keys and fresh ones).
        keys = list(index.keys())[:5]
        for key in keys:
            brute = {v for v in graph.common_neighbors(key)
                     if graph.label_of(v) == constraint.target}
            assert set(index.fetch(key)) == brute
        # A random non-key S-labeled set must fetch empty and have no
        # common neighbours with the target label.
        for _ in range(3):
            sample = []
            ok = True
            for label in constraint.source:
                bucket = [v for v in nodes if graph.label_of(v) == label]
                if not bucket:
                    ok = False
                    break
                sample.append(rng.choice(bucket))
            if not ok:
                continue
            key = tuple(sample)
            brute = {v for v in graph.common_neighbors(key)
                     if graph.label_of(v) == constraint.target}
            assert set(index.fetch(key)) == brute


@given(data=graph_and_pattern())
@settings(**_SETTINGS)
def test_simulation_covers_subset_of_subgraph_covers(data):
    graph, pattern, _ = data
    schema = discover_schema(graph, type1_max=30, unit_max=10)
    sub = compute_covers(pattern, schema, "subgraph")
    sim = compute_covers(pattern, schema, "simulation")
    assert sim.node_cover <= sub.node_cover
    assert sim.edge_cover <= sub.edge_cover


@given(data=graph_and_pattern())
@settings(**_SETTINGS)
def test_bounded_subgraph_evaluation_is_exact(data):
    """Theorem 1, empirically: EBChk yes ⇒ Q(G_Q) = Q(G)."""
    graph, pattern, _ = data
    schema = discover_schema(graph, type1_max=1000, unit_max=1000)
    if not ebchk(pattern, schema).bounded:
        return
    plan = qplan(pattern, schema)
    sx = SchemaIndex(graph, schema)
    result = execute_plan(plan, sx)
    bounded = {frozenset(m.items())
               for m in find_matches(pattern, result.gq,
                                     candidates=result.candidates)}
    direct = {frozenset(m.items()) for m in find_matches(pattern, graph)}
    assert bounded == direct


@given(data=graph_and_pattern())
@settings(**_SETTINGS)
def test_bounded_simulation_evaluation_is_exact(data):
    """Theorem 7, empirically: sEBChk yes ⇒ Q(G_Q) = Q(G)."""
    graph, pattern, _ = data
    schema = discover_schema(graph, type1_max=1000, unit_max=1000)
    if not sebchk(pattern, schema).bounded:
        return
    plan = sqplan(pattern, schema)
    sx = SchemaIndex(graph, schema)
    result = execute_plan(plan, sx)
    bounded = simulate(pattern, result.gq, candidates=result.candidates)
    direct = simulate(pattern, graph)
    assert relation_pairs(bounded) == relation_pairs(direct)


@given(data=graph_and_pattern())
@settings(**_SETTINGS)
def test_simulation_result_is_valid_and_maximal_sample(data):
    graph, pattern, seed = data
    relation = simulate(pattern, graph)
    if relation:
        assert simulation_holds(pattern, graph, relation)
    # Adding any absent pair (sampled) must break the simulation property.
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    for _ in range(5):
        u = rng.choice(list(pattern.nodes()))
        v = rng.choice(nodes)
        if relation and v in relation.get(u, set()):
            continue
        trial = {k: set(s) for k, s in relation.items()} if relation else {
            k: set() for k in pattern.nodes()}
        trial.setdefault(u, set()).add(v)
        # Fill empty pattern nodes minimally to pass totality, if possible.
        if any(not s for s in trial.values()):
            continue
        assert not simulation_holds(pattern, graph, trial)


@given(data=graph_and_pattern())
@settings(**_SETTINGS)
def test_edge_strategies_equivalent(data):
    """Index-driven and probe-all edge phases yield G_Q's with identical
    match sets (both semantics)."""
    from repro.core.executor import MODE_PLAN, MODE_PROBE
    graph, pattern, _ = data
    schema = discover_schema(graph, type1_max=1000, unit_max=1000)
    if not ebchk(pattern, schema).bounded:
        return
    plan = qplan(pattern, schema)
    sx = SchemaIndex(graph, schema)
    via_plan = execute_plan(plan, sx, edge_mode=MODE_PLAN)
    via_probe = execute_plan(plan, sx, edge_mode=MODE_PROBE)
    matches_plan = {frozenset(m.items())
                    for m in find_matches(pattern, via_plan.gq,
                                          candidates=via_plan.candidates)}
    matches_probe = {frozenset(m.items())
                     for m in find_matches(pattern, via_probe.gq,
                                           candidates=via_probe.candidates)}
    assert matches_plan == matches_probe


@given(data=graph_and_pattern(), m_small=st.integers(0, 5),
       m_delta=st.integers(0, 50))
@settings(**_SETTINGS)
def test_instance_boundedness_monotone_in_m(data, m_small, m_delta):
    """Larger M never makes fewer queries instance-bounded."""
    from repro.core.instance import is_instance_bounded
    graph, pattern, _ = data
    schema = discover_schema(graph, type1_max=3, unit_max=2)
    small = is_instance_bounded([pattern], schema, graph, m_small)
    large = is_instance_bounded([pattern], schema, graph, m_small + m_delta)
    assert large.bounded_fraction >= small.bounded_fraction


@given(data=graph_and_pattern())
@settings(**_SETTINGS)
def test_maximal_extension_is_satisfied_and_sufficient(data):
    """The maximal M-extension's constraints hold on G, and an unbounded M
    always instance-bounds a workload over G's labels (Proposition 5)."""
    from repro.core.instance import is_instance_bounded
    graph, pattern, _ = data
    if not (set(pattern.labels()) <= graph.labels()):
        return
    schema = discover_schema(graph, type1_max=2, unit_max=1)
    result = is_instance_bounded([pattern], schema, graph, 10**9)
    assert result.bounded
    assert SchemaIndex(graph, result.extension).satisfied()


@given(seed=st.integers(0, 10_000), steps=st.integers(1, 8))
@settings(**_SETTINGS)
def test_maintenance_equals_rebuild(seed, steps):
    from repro import GraphDelta
    from repro.constraints.maintenance import MaintainedSchemaIndex
    from tests.test_maintenance import assert_same_as_rebuild

    rng = random.Random(seed)
    graph = random_labeled_graph(25, 3, 60, seed=seed)
    schema = discover_schema(graph, type1_max=100, unit_max=100)
    maintained = MaintainedSchemaIndex(graph, schema)
    nodes = list(graph.nodes())
    next_id = max(nodes) + 1
    for _ in range(steps):
        delta = GraphDelta()
        kind = rng.randrange(4)
        if kind == 0 and len(nodes) >= 2:
            a, b = rng.sample(nodes, 2)
            if not graph.has_edge(a, b):
                delta.add_edge(a, b)
        elif kind == 1:
            edges = list(graph.edges())
            if edges:
                delta.remove_edge(*rng.choice(edges))
        elif kind == 2:
            delta.add_node(next_id, f"L{rng.randrange(3)}",
                           value=rng.randrange(20))
            if nodes:
                delta.add_edge(next_id, rng.choice(nodes))
            nodes.append(next_id)
            next_id += 1
        elif nodes:
            victim = rng.choice(nodes)
            delta.remove_node(victim)
            nodes.remove(victim)
        if len(delta):
            maintained.apply(delta)
            assert_same_as_rebuild(maintained)


@given(data=graph_and_pattern())
@settings(**_SETTINGS)
def test_worst_case_bounds_hold_at_runtime(data):
    """The plan's static worst-case arithmetic bounds actual accesses.

    Range hints are *estimates* (they assume distinct attribute values per
    label, like the paper's Example 1 does for years), so the guaranteed
    bounds come from the hint-free plan.
    """
    from repro import AccessStats
    graph, pattern, _ = data
    schema = discover_schema(graph, type1_max=1000, unit_max=1000)
    if not ebchk(pattern, schema).bounded:
        return
    plan = qplan(pattern, schema, use_range_hints=False)
    stats = AccessStats()
    result = execute_plan(plan, SchemaIndex(graph, schema), stats=stats)
    assert stats.nodes_fetched <= plan.worst_case_nodes_fetched
    assert stats.edges_checked <= plan.worst_case_edges_checked
    assert result.gq.num_nodes <= plan.worst_case_gq_nodes
    for u in pattern.nodes():
        assert len(result.candidates[u]) <= plan.size_bound(u)
