"""The ShardBackend contract, parameterized over all three backends.

Inline (shards in this process), process (worker pool), and remote
(shard-server fleet over TCP) implement one abstract contract
(:class:`repro.engine.parallel.ShardBackend`); these tests pin the parts
the scatter executor relies on — shard count, constraint positions,
scatter alignment under owner routing, extension-stats merging, online
extension, idempotent close — and the end answer identity against a
sequential single-graph session.
"""

from __future__ import annotations

import random

import pytest

from repro import AccessConstraint, AccessStats, ShardBackend, connect
from repro.core.actualized import SIMULATION, SUBGRAPH
from repro.core.ebchk import is_effectively_bounded
from repro.engine.parallel import (
    InlineShardBackend,
    ProcessShardBackend,
    RemoteShardBackend,
)
from repro.matching.bounded import canonical_answer

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

SHARDS = 3
BACKENDS = ["inline", "process", "remote"]


@pytest.fixture(scope="module")
def workload(imdb_small):
    from repro.pattern.generator import PatternGenerator

    graph, schema = imdb_small
    generator = PatternGenerator.from_graph(graph, rng=random.Random(11),
                                            schema=schema)
    pool = generator.generate_many(60)
    sub = [q for q in pool
           if is_effectively_bounded(q, schema, SUBGRAPH).bounded][:3]
    sim = [q for q in pool
           if is_effectively_bounded(q, schema, SIMULATION).bounded][:3]
    assert sub and sim
    return sub, sim


@pytest.fixture(scope="module")
def sharded_artifact(tmp_path_factory, imdb_small, workload):
    graph, schema = imdb_small
    sub, sim = workload
    engine = connect((graph, schema))
    for q in sub:
        engine.prepare(q, SUBGRAPH)
    for q in sim:
        engine.prepare(q, SIMULATION)
    path = tmp_path_factory.mktemp("contract") / "artifact"
    engine.save(path, shards=SHARDS)
    return path


@pytest.fixture(scope="module")
def shard_fleet(sharded_artifact):
    from repro.server.shardserver import ShardServer

    servers = [ShardServer(sharded_artifact / f"shard-{i:04d}").start()
               for i in range(SHARDS)]
    yield [server.address for server in servers]
    for server in servers:
        server.stop()


@pytest.fixture(params=BACKENDS)
def backend_engine(request, sharded_artifact, shard_fleet):
    """A scatter session per backend kind, plus the expected class."""
    kind = request.param
    if kind == "inline":
        engine = connect(sharded_artifact, strategy="scatter")
        expected = InlineShardBackend
    elif kind == "process":
        engine = connect(sharded_artifact, workers=2)
        expected = ProcessShardBackend
    else:
        engine = connect(sharded_artifact, backend="remote",
                         shard_addrs=shard_fleet)
        expected = RemoteShardBackend
    try:
        yield engine, expected
    finally:
        engine.close()


def fingerprint(engine, workload):
    """Answers + G_Q + candidates + AccessStats for the whole workload —
    the full byte-identity surface of the acceptance criteria."""
    sub, sim = workload
    out = []
    for semantics, queries in ((SUBGRAPH, sub), (SIMULATION, sim)):
        for q in queries:
            run = engine.query(q, semantics, stats=AccessStats())
            ex = run.execution
            out.append((
                canonical_answer(semantics, run.answer),
                sorted(ex.gq.nodes()),
                sorted(ex.gq.edges()),
                sorted((u, tuple(sorted(c)))
                       for u, c in ex.candidates.items()),
                (ex.stats.nodes_fetched, ex.stats.edges_checked,
                 ex.stats.index_fetches, ex.stats.distinct_nodes),
            ))
    return out


@pytest.fixture(scope="module")
def sequential_fingerprint(imdb_small, workload):
    graph, schema = imdb_small
    engine = connect((graph, schema))
    return fingerprint(engine, workload)


class TestContract:
    def test_is_shard_backend(self, backend_engine):
        engine, expected = backend_engine
        backend = engine._shards
        assert isinstance(backend, expected)
        assert isinstance(backend, ShardBackend)
        assert backend.num_shards == SHARDS

    def test_constraint_positions_match_schema(self, backend_engine):
        engine, _ = backend_engine
        assert engine._shards.constraint_pos == engine.schema.positions()
        # Positions are dense and start at 0 regardless of backend.
        positions = sorted(engine._shards.constraint_pos.values())
        assert positions == list(range(len(positions)))

    def test_scatter_alignment_and_routing_equivalence(self, backend_engine,
                                                       imdb_small):
        engine, _ = backend_engine
        backend = engine._shards
        graph, _ = imdb_small
        nodes = sorted(graph.nodes())[:8]
        task = ("probe", nodes[:4], nodes[4:])
        all_shards = frozenset(range(SHARDS))

        broadcast = backend.scatter([task])
        assert len(broadcast) == SHARDS
        assert all(len(row) == 1 for row in broadcast)

        explicit = backend.scatter([task], [all_shards])
        assert explicit == broadcast

        routed = backend.scatter([task], [frozenset({1})])
        assert [row[0] for i, row in enumerate(routed) if i != 1] == \
            [None, None]
        assert routed[1][0] == broadcast[1][0]

        nothing = backend.scatter([task], [frozenset()])
        assert all(row == [None] for row in nothing)

    def test_scatter_counters(self, backend_engine, imdb_small):
        engine, _ = backend_engine
        backend = engine._shards
        graph, _ = imdb_small
        nodes = sorted(graph.nodes())[:4]
        task = ("probe", nodes[:2], nodes[2:])
        rounds = backend.scatter_rounds
        messages = backend.scatter_messages
        backend.scatter([task], [frozenset({0})])
        assert backend.scatter_rounds == rounds + 1
        assert backend.scatter_messages == messages + 1
        assert backend.scatter_messages <= backend.scatter_messages_broadcast

    def test_extension_stats_merge_identical(self, backend_engine,
                                             imdb_small):
        engine, _ = backend_engine
        graph, _ = imdb_small
        labels = sorted({graph.label_of(v) for v in graph.nodes()})[:3]
        per_shard = engine._shards.extension_stats(labels)
        assert len(per_shard) == SHARDS
        merged: dict = {}
        for counts, _bounds in per_shard:
            for label, n in counts.items():
                merged[label] = merged.get(label, 0) + n
        for label in labels:
            expected = sum(1 for v in graph.nodes()
                           if graph.label_of(v) == label)
            assert merged.get(label, 0) == expected

    def test_extend_grows_positions_and_is_idempotent(self, backend_engine):
        engine, _ = backend_engine
        backend = engine._shards
        existing = next(iter(engine.schema))
        before = dict(backend.constraint_pos)
        results = backend.extend([existing])
        assert backend.constraint_pos == before  # already present
        assert len(results) == SHARDS
        assert all(info["built"] == 0 for info in results)

    def test_extend_schema_online(self, backend_engine):
        engine, _ = backend_engine
        backend = engine._shards
        added = AccessConstraint(("actor",), "movie", 64)
        if added in engine.schema:
            pytest.skip("fixture schema already carries the constraint")
        before_positions = len(backend.constraint_pos)
        report = engine.extend_schema([added])
        assert report.built >= 1
        assert len(backend.constraint_pos) == before_positions + 1
        assert added in engine.schema

    def test_answers_identical_to_sequential(self, backend_engine, workload,
                                             sequential_fingerprint):
        engine, _ = backend_engine
        assert fingerprint(engine, workload) == sequential_fingerprint

    def test_close_idempotent(self, sharded_artifact, shard_fleet,
                              backend_engine):
        engine, _ = backend_engine
        backend = engine._shards
        engine.close()
        backend.close()
        backend.close()
