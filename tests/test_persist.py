"""Tests for persistent compiled artifacts (repro.engine.persist).

Covers the binary container, FrozenGraph/FrozenConstraintIndex buffer
round-trips, engine save/open_path equivalence (deterministic and
hypothesis property tests), corruption and version-skew failure modes,
and the staleness protocol around ``apply``.
"""

from __future__ import annotations

import json
import random
from array import array

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AccessConstraint, AccessSchema, GraphDelta, QueryEngine
from repro.constraints.discovery import discover_schema
from repro.constraints.index import FrozenConstraintIndex, SchemaIndex
from repro.core.actualized import SIMULATION, SUBGRAPH
from repro.engine import persist
from repro.errors import (
    ArtifactCorrupt,
    ArtifactError,
    ArtifactStale,
    ArtifactVersionMismatch,
    EngineError,
)
from repro.graph.frozen import FrozenGraph
from repro.graph.generators import random_labeled_graph
from repro.matching.simulation import relation_pairs
from repro.pattern.generator import PatternGenerator

_SETTINGS = dict(max_examples=12, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def subgraph_answer_set(run):
    return {frozenset(m.items()) for m in run.answer}


@pytest.fixture()
def saved(tmp_path, imdb_small):
    """A live engine with prepared queries plus its saved artifact."""
    graph, schema = imdb_small
    engine = QueryEngine.open(graph, schema)
    generator = PatternGenerator.from_graph(graph, rng=random.Random(11),
                                            schema=schema)
    from repro.errors import NotEffectivelyBounded
    prepared = []
    for pattern in generator.generate_many(30):
        try:
            engine.prepare(pattern)
            prepared.append(pattern)
        except NotEffectivelyBounded:
            continue
        if len(prepared) >= 5:
            break
    assert prepared, "workload produced no bounded patterns"
    path = tmp_path / "artifact"
    engine.save(path)
    return engine, prepared, path


# ----------------------------------------------------------- binary container
class TestBinaryContainer:
    def test_round_trip(self):
        buffers = {"a": array("q", [1, -5, 2**40]), "empty": array("q"),
                   "b": array("q", range(100))}
        unpacked = persist.unpack_buffers(persist.pack_buffers(buffers))
        assert set(unpacked) == set(buffers)
        for name, buf in buffers.items():
            assert list(unpacked[name]) == list(buf)

    def test_byteswap_round_trip(self):
        values = [0, 1, -1, 2**40, -(2**40)]
        swapped = array("q", values)
        swapped.byteswap()
        unpacked = persist.unpack_buffers(
            persist.pack_buffers({"x": swapped}), byteswap=True)
        assert list(unpacked["x"]) == values

    def test_bad_magic(self):
        with pytest.raises(ArtifactCorrupt):
            persist.unpack_buffers(b"NOTMAGIC" + b"\x00" * 32)

    def test_truncated(self):
        data = persist.pack_buffers({"a": array("q", range(10))})
        with pytest.raises(ArtifactCorrupt):
            persist.unpack_buffers(data[:-4])


# ------------------------------------------------------------- buffer protocols
class TestFrozenGraphBuffers:
    def test_round_trip(self, imdb_small):
        graph, _ = imdb_small
        frozen = FrozenGraph.from_graph(graph)
        buffers, meta = frozen.to_buffers()
        rebuilt = FrozenGraph.from_buffers(buffers, json.loads(json.dumps(meta)))
        assert sorted(rebuilt.nodes()) == sorted(frozen.nodes())
        assert rebuilt.num_edges == frozen.num_edges
        for v in frozen.nodes():
            assert rebuilt.label_of(v) == frozen.label_of(v)
            assert rebuilt.value_of(v) == frozen.value_of(v)
            assert list(rebuilt.out_neighbors(v)) == list(frozen.out_neighbors(v))
            assert list(rebuilt.in_neighbors(v)) == list(frozen.in_neighbors(v))
        for label in frozen.labels():
            assert rebuilt.nodes_with_label(label) == frozen.nodes_with_label(label)

    def test_inconsistent_shapes_rejected(self, imdb_small):
        from repro.errors import GraphError
        graph, _ = imdb_small
        buffers, meta = FrozenGraph.from_graph(graph).to_buffers()
        broken = dict(buffers)
        broken["out_ptr"] = array("q", list(buffers["out_ptr"])[:-1])
        with pytest.raises(GraphError):
            FrozenGraph.from_buffers(broken, meta)


class TestFrozenIndexBuffers:
    def test_round_trip_and_lazy_decode(self, imdb_small):
        graph, schema = imdb_small
        sx = SchemaIndex(graph, schema, frozen=True)
        for constraint in schema:
            index = sx.index_for(constraint)
            rebuilt = FrozenConstraintIndex.from_buffers(
                constraint, index.to_buffers())
            assert rebuilt._entry_data is None, "decode must be lazy"
            assert rebuilt.num_keys == index.num_keys
            assert rebuilt._entry_data is not None
            assert dict(rebuilt._entries) == dict(index._entries)

    def test_shape_mismatch_raises_on_first_use(self):
        constraint = AccessConstraint(("a",), "b", 3)
        broken = FrozenConstraintIndex.from_buffers(constraint, {
            "keys": array("q", [1, 2, 3]),
            "payload_ptr": array("q", [0, 1]),
            "payload": array("q", [9])})
        with pytest.raises(ArtifactCorrupt):
            broken.num_keys

    def test_missing_section(self):
        constraint = AccessConstraint((), "b", 3)
        with pytest.raises(ArtifactCorrupt):
            FrozenConstraintIndex.from_buffers(constraint, {})


# ------------------------------------------------------------ save / open_path
class TestSaveOpen:
    def test_round_trip_answers_identical(self, saved):
        engine, patterns, path = saved
        loaded = QueryEngine.open_path(path)
        for pattern in patterns:
            assert subgraph_answer_set(loaded.query(pattern)) == \
                subgraph_answer_set(engine.query(pattern))

    def test_prepared_forms_hit_plan_cache(self, saved):
        engine, patterns, path = saved
        loaded = QueryEngine.open_path(path)
        for pattern in patterns:
            loaded.prepare(pattern)
        assert loaded.stats.plan_cache_hits == len(patterns)
        assert loaded.stats.plan_cache_misses == 0

    def test_negative_verdicts_persisted(self, tmp_path, imdb_small):
        from repro.errors import NotEffectivelyBounded
        from repro.pattern import parse_pattern
        graph, schema = imdb_small
        engine = QueryEngine.open(graph, schema)
        lonely = parse_pattern("p: no_such_label")
        with pytest.raises(NotEffectivelyBounded):
            engine.prepare(lonely)
        engine.save(tmp_path / "a")
        loaded = QueryEngine.open_path(tmp_path / "a")
        with pytest.raises(NotEffectivelyBounded):
            loaded.prepare(lonely)
        assert loaded.stats.plan_cache_hits == 1

    def test_renumbered_pattern_hits_across_processes(self, saved):
        engine, patterns, path = saved
        pattern = patterns[0]
        offset = max(pattern.nodes()) + 7
        clone = type(pattern)(name="clone")
        for node in sorted(pattern.nodes()):
            clone.add_node(pattern.label_of(node),
                           predicate=pattern.predicate_of(node),
                           node_id=node + offset)
        for u, v in pattern.edges():
            clone.add_edge(u + offset, v + offset)
        loaded = QueryEngine.open_path(path)
        loaded.prepare(clone)
        assert loaded.stats.plan_cache_hits == 1

    def test_small_cache_size_never_evicts_persisted_plans(self, saved):
        engine, patterns, path = saved
        loaded = QueryEngine.open_path(path, cache_size=1)
        for pattern in patterns:
            loaded.prepare(pattern)
        assert loaded.stats.plan_cache_misses == 0, \
            "loading must not silently evict persisted plans"

    def test_save_from_mutable_session(self, tmp_path, imdb_small):
        graph, schema = imdb_small
        engine = QueryEngine.open(graph.copy(), schema, frozen=False)
        engine.save(tmp_path / "a")
        loaded = QueryEngine.open_path(tmp_path / "a")
        assert loaded.graph.num_edges == graph.num_edges

    def test_manifest_contents(self, saved):
        engine, patterns, path = saved
        info = persist.inspect_artifact(path)
        assert info["format_version"] == persist.FORMAT_VERSION
        assert info["cached_plans"] >= len(patterns)
        assert info["graph"]["nodes"] == engine.graph.num_nodes
        assert info["stale"] is None
        assert all(meta["status"] == "ok" for meta in info["files"].values())
        assert "cached plans" in persist.render_inspection(info)


# --------------------------------------------------------------- failure modes
class TestFailureModes:
    def test_corrupt_graph_payload(self, saved):
        _, _, path = saved
        target = path / persist.GRAPH_FILE
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0xFF
        target.write_bytes(bytes(data))
        with pytest.raises(ArtifactCorrupt):
            QueryEngine.open_path(path)
        info = persist.inspect_artifact(path)
        assert info["files"][persist.GRAPH_FILE]["status"] == "MISMATCH"

    def test_truncated_index_payload(self, saved):
        _, _, path = saved
        target = path / persist.INDEX_FILE
        target.write_bytes(target.read_bytes()[:-16])
        with pytest.raises(ArtifactCorrupt):
            QueryEngine.open_path(path)

    def test_missing_file(self, saved):
        _, _, path = saved
        (path / persist.PLANS_FILE).unlink()
        with pytest.raises(ArtifactCorrupt):
            QueryEngine.open_path(path)

    def test_version_skew(self, saved):
        _, _, path = saved
        manifest_path = path / persist.MANIFEST_FILE
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = persist.FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactVersionMismatch) as info:
            QueryEngine.open_path(path)
        assert info.value.found == persist.FORMAT_VERSION + 1
        assert info.value.supported == persist.FORMAT_VERSION

    def test_garbage_manifest(self, saved):
        _, _, path = saved
        (path / persist.MANIFEST_FILE).write_text("{not json")
        with pytest.raises(ArtifactCorrupt):
            QueryEngine.open_path(path)

    def test_missing_artifact_dir(self, tmp_path):
        with pytest.raises(ArtifactCorrupt):
            QueryEngine.open_path(tmp_path / "nope")

    def test_artifact_errors_are_engine_errors(self):
        assert issubclass(ArtifactCorrupt, ArtifactError)
        assert issubclass(ArtifactError, EngineError)


# ------------------------------------------------------------------- staleness
class TestStaleness:
    def delta(self, graph):
        delta = GraphDelta()
        nodes = sorted(graph.nodes())
        next_id = nodes[-1] + 1
        delta.add_node(next_id, graph.label_of(nodes[0]))
        delta.add_edge(next_id, nodes[0])
        return delta

    def test_frozen_loaded_engine_refuses_apply(self, saved):
        _, _, path = saved
        loaded = QueryEngine.open_path(path)
        with pytest.raises(EngineError):
            loaded.apply(self.delta(loaded.graph))

    def test_apply_marks_artifact_stale(self, saved):
        engine, patterns, path = saved
        mutable = QueryEngine.open_path(path, frozen=False)
        mutable.apply(self.delta(mutable.graph))
        assert persist.stale_info(path) is not None
        with pytest.raises(ArtifactStale):
            QueryEngine.open_path(path)
        stale = QueryEngine.open_path(path, allow_stale=True)
        assert stale.graph.num_nodes == engine.graph.num_nodes

    def test_save_repairs_staleness(self, saved):
        _, patterns, path = saved
        mutable = QueryEngine.open_path(path, frozen=False)
        mutable.apply(self.delta(mutable.graph))
        mutable.save(path)
        assert persist.stale_info(path) is None
        repaired = QueryEngine.open_path(path)
        assert repaired.graph.num_nodes == mutable.graph.num_nodes
        assert subgraph_answer_set(repaired.query(patterns[0])) == \
            subgraph_answer_set(mutable.query(patterns[0]))

    def test_mutable_warm_start_keeps_plans(self, saved):
        _, patterns, path = saved
        mutable = QueryEngine.open_path(path, frozen=False)
        for pattern in patterns:
            mutable.prepare(pattern)
        assert mutable.stats.plan_cache_hits == len(patterns)


# ------------------------------------------------------------- property tests
@st.composite
def graph_and_patterns(draw, max_nodes=30, num_labels=4):
    seed = draw(st.integers(0, 10_000))
    num_nodes = draw(st.integers(8, max_nodes))
    num_edges = draw(st.integers(num_nodes, 3 * num_nodes))
    graph = random_labeled_graph(num_nodes, num_labels, num_edges,
                                 seed=seed, value_range=20)
    if graph.num_edges == 0:
        nodes = list(graph.nodes())
        graph.add_edge(nodes[0], nodes[1])
    generator = PatternGenerator.from_graph(graph, rng=random.Random(seed + 1))
    patterns = [generator.generate(num_nodes=draw(st.integers(2, 4)),
                                   num_predicates=draw(st.integers(0, 2)))
                for _ in range(draw(st.integers(1, 3)))]
    return graph, patterns


@given(data=graph_and_patterns())
@settings(**_SETTINGS)
def test_roundtrip_answers_identical(data):
    """open_path(save(engine)) answers exactly like the live engine, for
    both semantics, including which queries are (not) bounded."""
    import tempfile

    graph, patterns = data
    schema = discover_schema(graph, type1_max=1000, unit_max=1000)
    engine = QueryEngine.open(graph, schema)
    expected = {}
    for i, pattern in enumerate(patterns):
        for semantics in (SUBGRAPH, SIMULATION):
            try:
                run = engine.query(pattern, semantics)
            except Exception as exc:
                expected[(i, semantics)] = ("error", type(exc))
                continue
            if semantics == SUBGRAPH:
                expected[(i, semantics)] = ("ok", subgraph_answer_set(run))
            else:
                expected[(i, semantics)] = ("ok", relation_pairs(run.answer))

    with tempfile.TemporaryDirectory() as artifact:
        engine.save(artifact)
        loaded = QueryEngine.open_path(artifact)
        for (i, semantics), (kind, value) in expected.items():
            pattern = patterns[i]
            if kind == "error":
                with pytest.raises(value):
                    loaded.query(pattern, semantics)
                continue
            run = loaded.query(pattern, semantics)
            if semantics == SUBGRAPH:
                assert subgraph_answer_set(run) == value
            else:
                assert relation_pairs(run.answer) == value


@given(data=graph_and_patterns(), position=st.floats(0.05, 0.95),
       flip=st.integers(1, 255))
@settings(**_SETTINGS)
def test_any_single_byte_corruption_is_detected(data, position, flip):
    """Flipping one byte of any payload file never yields a quietly
    wrong engine: open_path raises a typed artifact error."""
    import tempfile

    graph, _ = data
    schema = discover_schema(graph, type1_max=1000, unit_max=1000)
    engine = QueryEngine.open(graph, schema)
    with tempfile.TemporaryDirectory() as artifact:
        from pathlib import Path
        engine.save(artifact)
        files = sorted(persist.PAYLOAD_FILES)
        target = Path(artifact) / files[int(position * len(files)) % len(files)]
        data_bytes = bytearray(target.read_bytes())
        data_bytes[int(position * len(data_bytes))] ^= flip
        target.write_bytes(bytes(data_bytes))
        with pytest.raises(ArtifactError):
            QueryEngine.open_path(artifact)
