"""The pipelined scatter driver: identity, overlap, dedup, failure.

Covers the acceptance criteria of the barrier-free scatter PR:

* byte-identical answers / ``G_Q`` / candidates / ``AccessStats``
  pipelined-vs-barrier-vs-sequential at shard counts {1, 2, 4} under
  both semantics, against a fleet of randomly-delayed shard servers
  (hypothesis property test);
* the ``scatter_submit`` contract on all three backends — exactly-once
  completion per task, alignment with ``scatter``;
* rounds genuinely overlap on one connection (``rounds_overlapped``,
  per-connection ``inflight_peak`` wire stat, server-side
  ``pipeline_depth_peak``);
* cross-execution cell dedup shares wire traffic without sharing
  accounting (per-execution ``AccessStats`` stay exact);
* a healthy shard keeps answering while another shard sits in retry
  backoff (the backoff-under-lock regression);
* mid-flight shard death with multiple rounds outstanding raises typed
  :class:`~repro.errors.ShardUnavailable` with no partial answers, and
  the stream recovers — the next query over the same backend succeeds.
"""

from __future__ import annotations

import random
import socket
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AccessStats, ShardUnavailable, connect
from repro.core.actualized import SIMULATION, SUBGRAPH
from repro.core.ebchk import is_effectively_bounded
from repro.core.executor import execute_plans_scatter
from repro.matching.bounded import canonical_answer
from repro.server.shardserver import ShardServer

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

_SETTINGS = dict(max_examples=8, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow,
                                        HealthCheck.function_scoped_fixture])

SHARD_COUNTS = (1, 2, 4)


# --------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def workload(imdb_small):
    from repro.pattern.generator import PatternGenerator

    graph, schema = imdb_small
    generator = PatternGenerator.from_graph(graph, rng=random.Random(11),
                                            schema=schema)
    pool = generator.generate_many(60)
    sub = [q for q in pool
           if is_effectively_bounded(q, schema, SUBGRAPH).bounded][:3]
    sim = [q for q in pool
           if is_effectively_bounded(q, schema, SIMULATION).bounded][:3]
    assert sub and sim
    return sub, sim


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory, imdb_small, workload):
    graph, schema = imdb_small
    sub, sim = workload
    engine = connect((graph, schema))
    for q in sub:
        engine.prepare(q, SUBGRAPH)
    for q in sim:
        engine.prepare(q, SIMULATION)
    root = tmp_path_factory.mktemp("pipeline")
    paths = {}
    for shards in SHARD_COUNTS:
        path = root / f"artifact-{shards}"
        engine.save(path, shards=shards)
        paths[shards] = path
    return paths


@pytest.fixture(scope="module")
def delayed_fleets(artifacts):
    """Per shard count, a fleet whose servers answer scatters after a
    random 1-6 ms delay — the jitter that forces out-of-round-order
    completion on the pipelined path."""
    servers = []
    addrs = {}
    for shards, path in artifacts.items():
        fleet = [ShardServer(path / f"shard-{i:04d}", delay_ms=1.0,
                             delay_jitter_ms=5.0).start()
                 for i in range(shards)]
        servers.extend(fleet)
        addrs[shards] = [server.address for server in fleet]
    yield addrs
    for server in servers:
        server.stop()


def fingerprint(engine, query, semantics):
    run = engine.query(query, semantics, stats=AccessStats(),
                       refresh=True)
    ex = run.execution
    return (canonical_answer(semantics, run.answer),
            sorted(ex.gq.nodes()), sorted(ex.gq.edges()),
            sorted((u, tuple(sorted(c))) for u, c in ex.candidates.items()),
            (ex.stats.nodes_fetched, ex.stats.edges_checked,
             ex.stats.index_fetches, ex.stats.distinct_nodes))


def execution_fingerprint(execution, stats):
    ex = execution
    return (sorted(ex.gq.nodes()), sorted(ex.gq.edges()),
            sorted((u, tuple(sorted(c))) for u, c in ex.candidates.items()),
            (stats.nodes_fetched, stats.edges_checked,
             stats.index_fetches, stats.distinct_nodes))


# ------------------------------------------------------------ identity
class TestPipelinedIdentity:
    @given(shards=st.sampled_from(SHARD_COUNTS),
           semantics=st.sampled_from([SUBGRAPH, SIMULATION]),
           pick=st.integers(min_value=0, max_value=2))
    @settings(**_SETTINGS)
    def test_pipelined_identical_over_delayed_fleet(
            self, artifacts, delayed_fleets, workload, shards, semantics,
            pick):
        sub, sim = workload
        query = (sub if semantics == SUBGRAPH else sim)[pick % len(sub)]
        with connect(artifacts[shards], strategy="scatter",
                     scatter_pipeline=False) as barrier:
            expected = fingerprint(barrier, query, semantics)
        with connect(artifacts[shards], strategy="scatter") as inline:
            assert fingerprint(inline, query, semantics) == expected
        with connect(artifacts[shards], backend="remote",
                     shard_addrs=delayed_fleets[shards]) as remote:
            assert remote.scatter_pipeline is True
            assert fingerprint(remote, query, semantics) == expected

    def test_barrier_knob_identical_on_remote(self, artifacts,
                                              delayed_fleets, workload):
        sub, _ = workload
        with connect(artifacts[2], strategy="scatter") as inline:
            expected = [fingerprint(inline, q, SUBGRAPH) for q in sub]
        with connect(artifacts[2], backend="remote",
                     shard_addrs=delayed_fleets[2],
                     scatter_pipeline=False) as remote:
            assert remote.scatter_pipeline is False
            got = [fingerprint(remote, q, SUBGRAPH) for q in sub]
        assert got == expected

    def test_concurrent_batches_identical_and_overlapped(
            self, artifacts, delayed_fleets, workload):
        """Two batches served concurrently over one backend: answers
        stay byte-identical while rounds from the two drivers genuinely
        interleave on the shared connections (request-id correlation),
        which the barrier-era global round lock made impossible."""
        sub, sim = workload
        batch = [(q, SUBGRAPH) for q in sub] + [(q, SIMULATION) for q in sim]
        with connect(artifacts[4], strategy="scatter") as inline:
            expected = [canonical_answer(sem, run.answer) for (_, sem), run
                        in zip(batch, inline.query_batch(batch))]
        with connect(artifacts[4], backend="remote",
                     shard_addrs=delayed_fleets[4]) as remote:
            results: dict[int, list] = {}

            def worker(slot):
                # stats=... forces real execution (no memoized answers),
                # so both drivers stay active on the wire together.
                runs = remote.query_batch(batch, stats=AccessStats())
                results[slot] = [canonical_answer(sem, run.answer)
                                 for (_, sem), run in zip(batch, runs)]

            threads = [threading.Thread(target=worker, args=(slot,))
                       for slot in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert results[0] == expected
            assert results[1] == expected
            assert remote._shards.rounds_overlapped > 0


# ------------------------------------------------- scatter_submit contract
SHARDS = 3
BACKENDS = ["inline", "process", "remote"]


@pytest.fixture(scope="module")
def contract_fleet(artifacts):
    servers = [ShardServer(artifacts[4] / f"shard-{i:04d}").start()
               for i in range(4)]
    yield [server.address for server in servers]
    for server in servers:
        server.stop()


@pytest.fixture(params=BACKENDS)
def any_backend(request, artifacts, contract_fleet):
    if request.param == "inline":
        engine = connect(artifacts[4], strategy="scatter")
    elif request.param == "process":
        engine = connect(artifacts[4], workers=2)
    else:
        engine = connect(artifacts[4], backend="remote",
                         shard_addrs=contract_fleet)
    try:
        yield engine._shards
    finally:
        engine.close()


class TestScatterSubmitContract:
    def test_exactly_once_and_aligned_with_scatter(self, any_backend,
                                                   imdb_small):
        graph, _ = imdb_small
        nodes = sorted(graph.nodes())[:8]
        tasks = [("probe", nodes[:4], nodes[4:]),
                 ("probe", nodes[:2], nodes[2:4])]
        expected = any_backend.scatter(tasks)

        fired: dict[int, list] = {}
        done = threading.Event()

        def on_task(i, responses):
            assert i not in fired  # exactly once per task index
            fired[i] = responses
            if len(fired) == len(tasks):
                done.set()

        any_backend.scatter_submit(tasks, None, on_task)
        assert done.wait(10.0)
        for i in range(len(tasks)):
            assert fired[i] == [row[i] for row in expected]

    def test_routed_and_unrouted_tasks(self, any_backend, imdb_small):
        graph, _ = imdb_small
        nodes = sorted(graph.nodes())[:4]
        task = ("probe", nodes[:2], nodes[2:])
        fired: dict[int, list] = {}
        done = threading.Event()

        def on_task(i, responses):
            fired[i] = responses
            if len(fired) == 2:
                done.set()

        any_backend.scatter_submit([task, task],
                                   [frozenset({1}), frozenset()], on_task)
        assert done.wait(10.0)
        assert fired[1] == [None] * any_backend.num_shards  # unrouted
        assert [r for i, r in enumerate(fired[0]) if i != 1] == \
            [None] * (any_backend.num_shards - 1)
        assert fired[0][1] is not None


# ------------------------------------------------------------- overlap
class TestOverlap:
    def test_rounds_overlap_on_one_connection(self, artifacts, imdb_small):
        """Two submits back-to-back against a slow shard: the second
        goes out while the first is still in flight, and both the
        client and the server observe pipeline depth 2."""
        graph, _ = imdb_small
        nodes = sorted(graph.nodes())[:4]
        task = ("probe", nodes[:2], nodes[2:])
        server = ShardServer(artifacts[1] / "shard-0000",
                             delay_ms=150.0).start()
        try:
            engine = connect(artifacts[1], backend="remote",
                             shard_addrs=[server.address])
            backend = engine._shards
            try:
                fired = []
                done = threading.Event()

                def on_task(i, responses):
                    fired.append(responses)
                    if len(fired) == 2:
                        done.set()

                backend.scatter_submit([task], None, on_task)
                backend.scatter_submit([task], None, on_task)
                peak = max(w["inflight"] for w in backend.wire_stats())
                assert done.wait(10.0)
                assert backend.rounds_overlapped >= 1
                assert peak >= 2
                assert max(w["inflight_peak"]
                           for w in backend.wire_stats()) >= 2
                assert fired[0] == fired[1]
                assert server.pipeline_depth_peak >= 2
            finally:
                engine.close()
        finally:
            server.stop()


# --------------------------------------------------------------- dedup
class TestCrossExecutionDedup:
    def test_identical_plans_share_wire_not_accounting(self, artifacts,
                                                       workload):
        sub, _ = workload
        with connect(artifacts[2], strategy="scatter") as engine:
            backend = engine._shards
            plan_a = engine.prepare(sub[0], SUBGRAPH).plan
            # Two executions of one plan: identical fetch streams, so
            # every first-round cell dedups against its twin.
            plan_b = plan_a
            stats = [AccessStats() for _ in range(2)]
            before_tasks = backend.tasks_scattered
            executions = execute_plans_scatter([plan_a, plan_b], backend,
                                               stats_list=stats)
            dedup_tasks = backend.tasks_scattered - before_tasks

            barrier_stats = [AccessStats() for _ in range(2)]
            before_tasks = backend.tasks_scattered
            barrier = execute_plans_scatter([plan_a, plan_b], backend,
                                            stats_list=barrier_stats,
                                            pipeline=False)
            barrier_tasks = backend.tasks_scattered - before_tasks

            assert backend.scatter_dedup_hits > 0
            # Wire traffic shrinks; per-execution accounting does not.
            assert dedup_tasks < barrier_tasks
            for ex, st_, bex, bst in zip(executions, stats, barrier,
                                         barrier_stats):
                assert execution_fingerprint(ex, st_) == \
                    execution_fingerprint(bex, bst)


# ------------------------------------------------------------- failure
class KillSwitchShardServer(ShardServer):
    """Severs every connection on scatter while ``killing`` is set —
    a deterministic mid-flight death that heals on demand."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.killing = False

    def dispatch(self, doc):
        if doc.get("op") == "scatter" and self.killing:
            for conn in list(self._server.active_connections):
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
        return super().dispatch(doc)


class TestFailure:
    def test_healthy_shard_answers_during_backoff(self, artifacts,
                                                  imdb_small):
        """The backoff-under-lock regression: shard 1 is down and mid
        retry-backoff; shard 0 must still answer well inside shard 1's
        backoff window."""
        graph, _ = imdb_small
        nodes = sorted(graph.nodes())[:4]
        task = ("probe", nodes[:2], nodes[2:])
        path = artifacts[2]
        servers = [ShardServer(path / f"shard-{i:04d}").start()
                   for i in range(2)]
        engine = connect(path, backend="remote",
                         shard_addrs=[s.address for s in servers],
                         retries=1, retry_backoff_s=1.0)
        backend = engine._shards
        try:
            # Warm both connections, then kill shard 1 for good.
            backend.scatter([task])
            servers[1].stop()

            healthy_done = threading.Event()
            dead_result: list = []
            dead_done = threading.Event()

            def on_task(i, responses):
                if i == 0:
                    healthy_done.set()
                else:
                    dead_result.append(responses)
                    dead_done.set()

            start = time.monotonic()
            backend.scatter_submit([task, task],
                                   [frozenset({0}), frozenset({1})],
                                   on_task)
            assert healthy_done.wait(5.0)
            healthy_elapsed = time.monotonic() - start
            # Shard 1's first backoff alone is 1s; the healthy answer
            # must not be serialized behind it.
            assert healthy_elapsed < 0.8
            assert dead_done.wait(30.0)
            assert isinstance(dead_result[0], ShardUnavailable)
        finally:
            engine.close()
            for server in servers:
                server.stop()

    def test_midflight_death_typed_then_stream_recovers(self, artifacts,
                                                        workload):
        """Kill a shard with multiple rounds outstanding: the batch
        fails with one typed error and no partial results; healing the
        shard makes the very same backend answer again byte-identically
        (no request-id desync survives the reconnect)."""
        sub, sim = workload
        path = artifacts[2]
        batch = [(q, SUBGRAPH) for q in sub] + [(q, SIMULATION) for q in sim]
        with connect(path, strategy="scatter") as inline:
            expected = [canonical_answer(sem, run.answer) for (_, sem), run
                        in zip(batch, inline.query_batch(batch))]
        servers = [KillSwitchShardServer(path / "shard-0000",
                                         delay_ms=2.0,
                                         delay_jitter_ms=4.0).start(),
                   ShardServer(path / "shard-0001", delay_ms=2.0,
                               delay_jitter_ms=4.0).start()]
        engine = connect(path, backend="remote",
                         shard_addrs=[s.address for s in servers],
                         retries=1, retry_backoff_s=0.01)
        try:
            servers[0].killing = True
            with pytest.raises(ShardUnavailable) as err:
                engine.query_batch(batch)
            assert err.value.shard_id == 0 or err.value.addr is not None

            servers[0].killing = False
            runs = engine.query_batch(batch)
            got = [canonical_answer(sem, run.answer)
                   for (_, sem), run in zip(batch, runs)]
            assert got == expected
        finally:
            engine.close()
            for server in servers:
                server.stop()
