"""Tests for actualized constraints Γ (Section III-B / VI-B)."""

import pytest

from repro import AccessConstraint, AccessSchema
from repro.core.actualized import (
    SIMULATION,
    SUBGRAPH,
    actualize,
    actualized_by_target,
    check_semantics,
    inverted_index,
    neighbour_pool,
)
from repro.errors import PatternError
from repro.pattern import parse_pattern


@pytest.fixture()
def q0():
    from tests.conftest import Q0_TEXT
    return parse_pattern(Q0_TEXT, name="Q0")
    # nodes: 0=award 1=year 2=movie 3=actor 4=actress 5=country


class TestSubgraphActualization:
    def test_example5_gamma(self, q0, a0_schema):
        """Example 5: φ1 = (u_award, u_year) ↦ (u_movie, 4),
        φ2 = movie ↦ (actor/actress, 30), φ3 = actor/actress ↦ (country, 1)."""
        gamma = actualize(q0, a0_schema, SUBGRAPH)
        rendered = {(phi.target, tuple(sorted(phi.neighbours)), phi.bound)
                    for phi in gamma}
        assert (2, (0, 1), 4) in rendered      # movie via (award, year)
        assert (3, (2,), 30) in rendered       # actor via movie
        assert (4, (2,), 30) in rendered       # actress via movie
        assert (5, (3,), 1) in rendered        # country via actor
        assert (5, (4,), 1) in rendered        # country via actress
        assert len(gamma) == 5

    def test_type1_not_actualized(self, q0, a0_schema):
        gamma = actualize(q0, a0_schema, SUBGRAPH)
        assert all(not phi.constraint.is_type1 for phi in gamma)

    def test_missing_source_label_skipped(self, q0):
        # (award, genre) -> movie: Q0 has no genre node, so no actualization.
        schema = AccessSchema([AccessConstraint(("award", "genre"), "movie", 5)])
        assert actualize(q0, schema, SUBGRAPH) == []

    def test_neighbours_use_both_directions(self, q0, a0_schema):
        # movie -> actor edge: actor's V̄ via movie->(actor,30) uses the
        # *incoming* edge from movie.
        gamma = actualize(q0, a0_schema, SUBGRAPH)
        actor_phis = [phi for phi in gamma if phi.target == 3]
        assert actor_phis and actor_phis[0].neighbours == frozenset({2})


class TestSimulationActualization:
    def test_children_only(self, q1, a1_schema):
        """Example 8/10: under simulation, u2 (B) has no actualized
        constraint in Q1 because C and D are its parents, not children."""
        gamma = actualize(q1, a1_schema, SIMULATION)
        targets = {phi.target for phi in gamma}
        assert 1 not in targets  # u2 = B

    def test_q2_gamma_example10(self, q2, a1_schema):
        """Example 10: Γ = {(u3,u4) ↦ (u2, 2), u2 ↦ (u1, 2)}."""
        gamma = actualize(q2, a1_schema, SIMULATION)
        rendered = {(phi.target, tuple(sorted(phi.neighbours)), phi.bound)
                    for phi in gamma}
        assert rendered == {(1, (2, 3), 2), (0, (1,), 2)}

    def test_simulation_gamma_subset_of_subgraph(self, q0, a0_schema, q2,
                                                 a1_schema):
        for pattern, schema in ((q0, a0_schema), (q2, a1_schema)):
            sub = {(p.target, p.neighbours, p.constraint)
                   for p in actualize(pattern, schema, SUBGRAPH)}
            sim = {(p.target, p.neighbours, p.constraint)
                   for p in actualize(pattern, schema, SIMULATION)}
            # Simulation neighbour sets are subsets of the subgraph ones.
            for target, members, constraint in sim:
                supersets = [m for t, m, c in sub
                             if t == target and c == constraint]
                assert supersets and members <= supersets[0]


class TestHelpers:
    def test_neighbour_pool(self, q1):
        assert neighbour_pool(q1, 1, SUBGRAPH) == {0, 2, 3}
        assert neighbour_pool(q1, 1, SIMULATION) == {0}

    def test_check_semantics(self):
        check_semantics(SUBGRAPH)
        check_semantics(SIMULATION)
        with pytest.raises(PatternError):
            check_semantics("bisimulation")

    def test_by_target_and_inverted(self, q0, a0_schema):
        gamma = actualize(q0, a0_schema, SUBGRAPH)
        by_target = actualized_by_target(gamma)
        assert set(by_target) == {2, 3, 4, 5}
        inv = inverted_index(gamma)
        # movie (2) appears in the neighbour sets of actor and actress.
        assert {phi.target for phi in inv[2]} == {3, 4}

    def test_str(self, q0, a0_schema):
        gamma = actualize(q0, a0_schema, SUBGRAPH)
        assert "↦" in str(gamma[0])
