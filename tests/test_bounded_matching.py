"""Tests for bounded evaluation (bVF2/bSim) and optimized baselines."""

import random

import pytest

from repro import SchemaIndex, bsim, bvf2, find_matches, opt_gsim, opt_vf2, simulate
from repro.accounting import AccessStats
from repro.errors import NotEffectivelyBounded
from repro.matching.optimized import type1_candidates
from repro.matching.simulation import relation_pairs
from repro.pattern.generator import PatternGenerator


def as_match_set(matches):
    return {frozenset(m.items()) for m in matches}


class TestBVF2:
    def test_q0_equals_direct(self, q0, a0_schema, imdb_small):
        graph, _ = imdb_small
        sx = SchemaIndex(graph, a0_schema)
        run = bvf2(q0, sx)
        assert as_match_set(run.answer) == as_match_set(find_matches(q0, graph))

    def test_unbounded_query_raises(self, q0):
        from repro import AccessSchema, Graph
        sx = SchemaIndex(Graph(), AccessSchema())
        with pytest.raises(NotEffectivelyBounded):
            bvf2(q0, sx)

    def test_reuses_supplied_plan(self, q0, a0_schema, imdb_small):
        from repro import qplan
        graph, _ = imdb_small
        sx = SchemaIndex(graph, a0_schema)
        plan = qplan(q0, a0_schema)
        run = bvf2(q0, sx, plan=plan)
        assert run.plan is plan

    def test_stats_accessible(self, q0, a0_schema, imdb_small):
        graph, _ = imdb_small
        sx = SchemaIndex(graph, a0_schema)
        stats = AccessStats()
        run = bvf2(q0, sx, stats=stats)
        assert run.stats is stats
        assert stats.nodes_fetched > 0
        assert run.gq.num_nodes <= run.plan.worst_case_gq_nodes

    def test_access_far_below_graph_size(self, q0, a0_schema, imdb_small):
        """The headline property: bounded evaluation touches a fraction
        of |G| (the paper reports <= 0.0032%)."""
        graph, _ = imdb_small
        sx = SchemaIndex(graph, a0_schema)
        run = bvf2(q0, sx)
        assert run.stats.total_accessed < graph.size


class TestBSim:
    def test_q2_on_g1_equals_direct(self, q2, a1_schema, g1):
        sx = SchemaIndex(g1, a1_schema)
        run = bsim(q2, sx)
        assert relation_pairs(run.answer) == relation_pairs(simulate(q2, g1))

    def test_unbounded_simulation_raises(self, q1, a1_schema, g1):
        sx = SchemaIndex(g1, a1_schema)
        with pytest.raises(NotEffectivelyBounded):
            bsim(q1, sx)

    def test_nonempty_simulation_answer(self, a1_schema, q2):
        """Build a graph where Q2 does match, and verify equality."""
        from repro import Graph
        g = Graph()
        a = g.add_node("A")
        b = g.add_node("B")
        c = g.add_node("C")
        d = g.add_node("D")
        g.add_edge(a, b)
        g.add_edge(b, a)
        g.add_edge(b, c)
        g.add_edge(b, d)
        sx = SchemaIndex(g, a1_schema)
        run = bsim(q2, sx)
        direct = simulate(q2, g)
        assert relation_pairs(run.answer) == relation_pairs(direct)
        assert relation_pairs(run.answer)  # non-empty


class TestOptimizedBaselines:
    def test_type1_candidates_only_for_covered_labels(self, q0, a0_schema,
                                                      imdb_small):
        graph, _ = imdb_small
        sx = SchemaIndex(graph, a0_schema)
        seeds = type1_candidates(q0, sx)
        assert set(seeds) == {0, 1, 5}  # award, year, country
        for v in seeds[1]:
            assert 2011 <= graph.value_of(v) <= 2013

    def test_opt_vf2_equals_vf2(self, q0, a0_schema, imdb_small):
        graph, _ = imdb_small
        sx = SchemaIndex(graph, a0_schema)
        assert as_match_set(opt_vf2(q0, sx)) == \
            as_match_set(find_matches(q0, graph))

    def test_opt_gsim_equals_gsim(self, imdb_small):
        from repro.pattern import parse_pattern
        graph, schema = imdb_small
        sx = SchemaIndex(graph, schema)
        p = parse_pattern("a: actor; c: country; a -> c")
        assert relation_pairs(opt_gsim(p, sx)) == \
            relation_pairs(simulate(p, graph))


class TestWorkloadEquivalence:
    """The core integration invariant over a random workload:
    for every effectively bounded query, bounded evaluation equals
    direct evaluation."""

    def test_subgraph_workload(self, imdb_small):
        from repro import ebchk
        graph, schema = imdb_small
        sx = SchemaIndex(graph, schema)
        gen = PatternGenerator.from_graph(graph, rng=random.Random(5))
        bounded_seen = 0
        for query in gen.generate_many(40, num_nodes=4):
            if not ebchk(query, schema).bounded:
                continue
            bounded_seen += 1
            run = bvf2(query, sx)
            direct = find_matches(query, graph)
            assert as_match_set(run.answer) == as_match_set(direct), query.name
        assert bounded_seen >= 5, "workload should contain bounded queries"

    def test_simulation_workload(self, imdb_small):
        from repro import sebchk
        graph, schema = imdb_small
        sx = SchemaIndex(graph, schema)
        gen = PatternGenerator.from_graph(graph, rng=random.Random(6))
        bounded_seen = 0
        for query in gen.generate_many(60, num_nodes=3):
            if not sebchk(query, schema).bounded:
                continue
            bounded_seen += 1
            run = bsim(query, sx)
            direct = simulate(query, graph)
            assert relation_pairs(run.answer) == relation_pairs(direct), query.name
        assert bounded_seen >= 3, "workload should contain bounded queries"
