"""Tests for the pattern text DSL."""

import pytest

from repro.errors import DslError
from repro.pattern import format_pattern, parse_pattern
from tests.conftest import Q0_TEXT


class TestParse:
    def test_q0(self):
        q = parse_pattern(Q0_TEXT, name="Q0")
        assert q.num_nodes == 6
        assert q.num_edges == 6
        assert q.name == "Q0"
        assert q.labels() == {"award", "year", "movie", "actor", "actress",
                              "country"}

    def test_predicates_applied(self):
        q = parse_pattern("y: year; y.value >= 2011; y.value <= 2013")
        node = next(iter(q.nodes()))
        assert q.predicate_of(node).evaluate(2012)
        assert not q.predicate_of(node).evaluate(2014)

    def test_edge_chain(self):
        q = parse_pattern("a: A; b: B; c: C; a -> b -> c")
        assert q.has_edge(0, 1) and q.has_edge(1, 2)

    def test_string_predicate(self):
        q = parse_pattern('c: country; c.value = "uk"')
        assert q.predicate_of(0).evaluate("uk")

    def test_float_predicate(self):
        q = parse_pattern("x: X; x.value > 1.5")
        assert q.predicate_of(0).evaluate(2.0)

    def test_comments_ignored(self):
        q = parse_pattern("a: A  # the start\n# full comment line\nb: B; a -> b")
        assert q.num_edges == 1

    def test_semicolons_and_newlines_mix(self):
        q = parse_pattern("a: A\nb: B;  c: C\na -> b; b -> c")
        assert q.num_nodes == 3 and q.num_edges == 2


class TestParseErrors:
    def test_duplicate_node(self):
        with pytest.raises(DslError, match="declared twice"):
            parse_pattern("a: A; a: B")

    def test_undeclared_edge_endpoint(self):
        with pytest.raises(DslError, match="undeclared node"):
            parse_pattern("a: A; a -> b")

    def test_undeclared_predicate_node(self):
        with pytest.raises(DslError, match="undeclared node"):
            parse_pattern("a: A; b.value > 3")

    def test_garbage_statement(self):
        with pytest.raises(DslError, match="cannot parse"):
            parse_pattern("a: A; a => b")

    def test_bad_constant(self):
        with pytest.raises(DslError):
            parse_pattern("a: A; a.value > oops")

    def test_unterminated_string(self):
        with pytest.raises(DslError):
            parse_pattern('a: A; a.value = "uk')

    def test_line_numbers_in_errors(self):
        with pytest.raises(DslError, match="line 2"):
            parse_pattern("a: A\n???")


class TestFormat:
    def test_round_trip(self):
        q = parse_pattern(Q0_TEXT, name="Q0")
        text = format_pattern(q)
        q2 = parse_pattern(text)
        assert q2.num_nodes == q.num_nodes
        assert q2.num_edges == q.num_edges
        # Same label multiset and predicate count
        assert sorted(q2.label_of(u) for u in q2.nodes()) == \
               sorted(q.label_of(u) for u in q.nodes())
        assert q2.num_predicates == q.num_predicates

    def test_string_constants_quoted(self):
        q = parse_pattern('c: country; c.value = "uk"')
        assert '"uk"' in format_pattern(q)
