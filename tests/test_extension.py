"""Tests for online M-bounded extension (repro.engine.extension), the
memoized greedy, the rescue pipeline, and extended-artifact persistence.

The correctness spine:

* extending never changes an already-bounded query's answers, plans or
  access accounting (property-tested);
* a rescued query answers exactly like a cold engine built directly on
  the extended schema ``A_M`` (property-tested);
* sharded extension (inline and worker pools) matches the unsharded
  engine, builds per-shard indexes for added constraints only, and the
  extended sharded artifact round-trips with full corruption detection.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AccessSchema, QueryEngine
from repro.constraints.discovery import discover_schema, neighbor_label_bounds
from repro.core.actualized import SIMULATION, SUBGRAPH
from repro.core.ebchk import is_effectively_bounded
from repro.core.instance import greedy_minimum_extension, is_instance_bounded
from repro.engine import persist, plan_extension, save_extended_sharded
from repro.engine.extension import workload_stats
from repro.errors import (
    ArtifactError,
    ArtifactVersionMismatch,
    ExtensionError,
    NotEffectivelyBounded,
)
from repro.graph.generators import imdb_like, random_labeled_graph
from repro.matching.bounded import canonical_answer
from repro.pattern import parse_pattern
from repro.pattern.generator import PatternGenerator

_SETTINGS = dict(max_examples=10, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])

UNBOUNDED = "a: actor; c: country; a -> c"
BOUNDED = "m: movie; y: year; m -> y"


@pytest.fixture()
def imdb_engine():
    """A fresh engine per test: extension grows the schema in place."""
    graph, schema = imdb_like(scale=0.02, seed=7)
    return QueryEngine.open(graph, AccessSchema(list(schema)))


# -------------------------------------------------------- planning
class TestPlanExtension:
    def test_plans_minimum_m_when_unspecified(self, imdb_engine):
        plan = plan_extension(imdb_engine, [parse_pattern(UNBOUNDED)])
        assert plan.added
        assert all(c.bound <= plan.m for c in plan.added)

    def test_bounded_workload_yields_empty_plan(self, imdb_engine):
        plan = plan_extension(imdb_engine, [parse_pattern(BOUNDED)], m=1)
        assert plan.empty

    def test_budget_too_small_raises(self, imdb_engine):
        with pytest.raises(ExtensionError):
            plan_extension(imdb_engine, [parse_pattern(UNBOUNDED)], m=0)

    def test_size_cap_raises(self, imdb_engine):
        with pytest.raises(ExtensionError) as info:
            plan_extension(imdb_engine, [parse_pattern(UNBOUNDED)],
                           max_added=0)
        assert info.value.needed is not None

    def test_foreign_labels_not_rescuable(self, imdb_engine):
        with pytest.raises(ExtensionError):
            plan_extension(imdb_engine,
                           [parse_pattern("x: nolabel; y: nolabel2; x -> y")])

    def test_needs_queries(self, imdb_engine):
        with pytest.raises(ExtensionError):
            plan_extension(imdb_engine, [])


# -------------------------------------------------- engine extension
class TestExtendSchema:
    def test_rescue_unbounded_query(self, imdb_engine):
        q = parse_pattern(UNBOUNDED)
        with pytest.raises(NotEffectivelyBounded):
            imdb_engine.query(q)
        plan = plan_extension(imdb_engine, [q])
        builds_before = imdb_engine.schema_index.builds
        report = imdb_engine.extend_schema(plan.added,
                                           provenance={"origin": "test",
                                                       "m": plan.m})
        assert report.version == 1
        assert report.built == len(plan.added)
        # Incremental: exactly the added constraints were built, nothing
        # re-built.
        assert imdb_engine.schema_index.builds - builds_before \
            == len(plan.added)
        assert len(imdb_engine.query(q).answer) > 0

    def test_provenance_recorded(self, imdb_engine):
        plan = plan_extension(imdb_engine, [parse_pattern(UNBOUNDED)])
        imdb_engine.extend_schema(plan.added,
                                  provenance={"origin": "test", "m": plan.m})
        generation = imdb_engine.catalog.generations[-1]
        assert generation.provenance["origin"] == "test"
        assert generation.added == plan.added

    def test_existing_indexes_not_rebuilt(self, imdb_engine):
        before = {c: imdb_engine.schema_index.index_for(c)
                  for c in imdb_engine.schema}
        plan = plan_extension(imdb_engine, [parse_pattern(UNBOUNDED)])
        imdb_engine.extend_schema(plan.added)
        for constraint, index in before.items():
            assert imdb_engine.schema_index.index_for(constraint) is index

    def test_answers_and_stats_unchanged_for_bounded_query(self,
                                                           imdb_engine):
        from repro.accounting import AccessStats

        q = parse_pattern(BOUNDED)
        stats_before = AccessStats()
        run_before = imdb_engine.query(q, stats=stats_before)
        plan = plan_extension(imdb_engine, [parse_pattern(UNBOUNDED)])
        imdb_engine.extend_schema(plan.added)
        stats_after = AccessStats()
        run_after = imdb_engine.query(q, stats=stats_after)
        assert canonical_answer(SUBGRAPH, run_before.answer) \
            == canonical_answer(SUBGRAPH, run_after.answer)
        assert stats_before.as_dict() == stats_after.as_dict()


# ------------------------------------------------ sharded extension
class TestShardedExtension:
    @pytest.fixture()
    def sharded_artifact(self, tmp_path):
        graph, schema = imdb_like(scale=0.02, seed=7)
        engine = QueryEngine.open(graph, AccessSchema(list(schema)))
        engine.prepare(parse_pattern(BOUNDED))
        engine.save(tmp_path / "art", shards=3)
        return tmp_path / "art"

    def test_inline_extension_matches_unsharded(self, sharded_artifact,
                                                imdb_engine):
        q = parse_pattern(UNBOUNDED)
        plan_ref = plan_extension(imdb_engine, [q])
        imdb_engine.extend_schema(plan_ref.added)
        expected = canonical_answer(SUBGRAPH, imdb_engine.query(q).answer)

        sharded = QueryEngine.open_path(sharded_artifact,
                                        strategy="scatter")
        plan = plan_extension(sharded, [q])
        assert plan.m == plan_ref.m and plan.added == plan_ref.added
        report = sharded.extend_schema(plan.added)
        # Every shard built exactly the added constraints.
        assert [info["built"] for info in report.per_shard] \
            == [len(plan.added)] * 3
        assert canonical_answer(SUBGRAPH, sharded.query(q).answer) \
            == expected

    def test_stats_merge_equals_global(self, sharded_artifact, imdb_engine):
        labels = {"actor", "country", "movie", "year"}
        merged = workload_stats(
            QueryEngine.open_path(sharded_artifact, strategy="scatter"),
            labels)
        direct = workload_stats(imdb_engine, labels)
        assert merged.label_counts == direct.label_counts
        assert merged.neighbor_bounds == direct.neighbor_bounds

    def test_worker_pool_extension(self, sharded_artifact, imdb_engine):
        q = parse_pattern(UNBOUNDED)
        plan_ref = plan_extension(imdb_engine, [q])
        imdb_engine.extend_schema(plan_ref.added)
        expected = canonical_answer(SUBGRAPH, imdb_engine.query(q).answer)
        with QueryEngine.open_path(sharded_artifact, workers=2) as pooled:
            plan = plan_extension(pooled, [q])
            assert plan.added == plan_ref.added
            report = pooled.extend_schema(plan.added)
            assert sum(info["built"] for info in report.per_shard) \
                == 3 * len(plan.added)
            assert canonical_answer(SUBGRAPH, pooled.query(q).answer) \
                == expected

    def test_extended_artifact_roundtrip(self, sharded_artifact, tmp_path):
        q = parse_pattern(UNBOUNDED)
        sharded = QueryEngine.open_path(sharded_artifact,
                                        strategy="scatter")
        plan = plan_extension(sharded, [q])
        sharded.extend_schema(plan.added, provenance={"origin": "t",
                                                      "m": plan.m})
        expected = canonical_answer(SUBGRAPH, sharded.query(q).answer)
        save_extended_sharded(sharded, sharded_artifact, tmp_path / "ext")

        reloaded = QueryEngine.open_path(tmp_path / "ext")
        assert reloaded.schema_version == 1
        assert reloaded.catalog.generations[1].added == plan.added
        assert canonical_answer(SUBGRAPH, reloaded.query(q).answer) \
            == expected
        # The bounded query's plan survived the rewrite too.
        assert len(reloaded.query(parse_pattern(BOUNDED)).answer) > 0

    def test_extend_in_place(self, sharded_artifact):
        q = parse_pattern(UNBOUNDED)
        sharded = QueryEngine.open_path(sharded_artifact,
                                        strategy="scatter")
        plan = plan_extension(sharded, [q])
        sharded.extend_schema(plan.added)
        save_extended_sharded(sharded, sharded_artifact, sharded_artifact)
        reloaded = QueryEngine.open_path(sharded_artifact)
        assert reloaded.schema_version == 1
        assert len(reloaded.query(q).answer) > 0

    def test_requires_inline_session(self, sharded_artifact, tmp_path,
                                     imdb_engine):
        from repro.errors import EngineError
        with pytest.raises(EngineError):
            save_extended_sharded(imdb_engine, sharded_artifact,
                                  tmp_path / "x")


# ---------------------------------------------------- v2 migration
def _downgrade_to_v2(artifact: Path) -> None:
    """Rewrite a freshly saved artifact as a faithful version-2 one:
    no catalog payload, no schema_version, format_version 2 (recursing
    into shard sub-artifacts for the sharded layout)."""
    manifest_path = artifact / persist.MANIFEST_FILE
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    manifest["format_version"] = 2
    manifest.pop("schema_version", None)
    manifest["files"].pop(persist.CATALOG_FILE, None)
    (artifact / persist.CATALOG_FILE).unlink()
    if manifest.get("layout") == "sharded":
        for meta in manifest["shards"]:
            shard_path = artifact / meta["dir"]
            _downgrade_to_v2(shard_path)
            meta["manifest_sha256"] = __import__("hashlib").sha256(
                (shard_path / persist.MANIFEST_FILE).read_bytes()).hexdigest()
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n",
                             encoding="utf-8")


class TestV2Migration:
    @pytest.fixture()
    def v2_artifact(self, tmp_path, imdb_engine):
        imdb_engine.prepare(parse_pattern(BOUNDED))
        imdb_engine.save(tmp_path / "art")
        _downgrade_to_v2(tmp_path / "art")
        return tmp_path / "art"

    def test_v2_opens_frozen_with_generation_zero(self, v2_artifact):
        engine = QueryEngine.open_path(v2_artifact)
        assert engine.schema_version == 0
        assert engine.catalog.generations[0].provenance["origin"] \
            == "v2-artifact"
        assert len(engine.query(parse_pattern(BOUNDED)).answer) > 0

    def test_v2_refuses_mutable_open(self, v2_artifact):
        with pytest.raises(ArtifactVersionMismatch):
            QueryEngine.open_path(v2_artifact, frozen=False)

    def test_v2_sharded_opens(self, tmp_path, imdb_engine):
        imdb_engine.save(tmp_path / "arts", shards=2)
        _downgrade_to_v2(tmp_path / "arts")
        engine = QueryEngine.open_path(tmp_path / "arts")
        assert engine.schema_version == 0
        assert len(engine.query(parse_pattern(BOUNDED)).answer) > 0

    def test_v2_engine_still_extends_in_memory(self, v2_artifact):
        engine = QueryEngine.open_path(v2_artifact)
        q = parse_pattern(UNBOUNDED)
        plan = plan_extension(engine, [q])
        engine.extend_schema(plan.added)
        assert engine.schema_version == 1
        assert len(engine.query(q).answer) > 0


# ----------------------------------------------------- greedy memo
def _reference_greedy(queries, schema, graph, m, semantics=SUBGRAPH):
    """The pre-memoization greedy, kept verbatim as the regression
    oracle: full EBChk re-checks per candidate per round."""
    full = is_instance_bounded(queries, schema, graph, m, semantics)
    if not full.bounded:
        return None
    candidates = list(full.added)
    current = AccessSchema(schema)
    chosen = []

    def coverage(schema_now):
        covered = 0
        for query in queries:
            result = is_effectively_bounded(query, schema_now, semantics)
            covered += len(result.covers.node_cover)
            covered += len(result.covers.edge_cover)
        return covered

    def all_bounded(schema_now):
        return all(is_effectively_bounded(q, schema_now, semantics).bounded
                   for q in queries)

    while not all_bounded(current):
        base = coverage(current)
        best_gain, best_constraint = 0, None
        for constraint in candidates:
            if constraint in current:
                continue
            trial = AccessSchema(current)
            trial.add(constraint)
            gain = coverage(trial) - base
            if gain > best_gain:
                best_gain, best_constraint = gain, constraint
        if best_constraint is None:
            for constraint in candidates:
                if constraint not in current:
                    current.add(constraint)
                    chosen.append(constraint)
            break
        current.add(best_constraint)
        chosen.append(best_constraint)
    return chosen


@st.composite
def extension_cases(draw):
    seed = draw(st.integers(0, 10_000))
    num_nodes = draw(st.integers(8, 24))
    graph = random_labeled_graph(num_nodes, draw(st.integers(2, 4)),
                                 draw(st.integers(num_nodes, 3 * num_nodes)),
                                 seed=seed, value_range=20)
    generator = PatternGenerator.from_graph(graph, rng=random.Random(seed + 1))
    queries = [generator.generate(num_nodes=draw(st.integers(2, 4)),
                                  num_predicates=draw(st.integers(0, 1)))
               for _ in range(draw(st.integers(1, 3)))]
    return graph, queries, seed


class TestGreedyMemoization:
    @given(case=extension_cases(), semantics=st.sampled_from([SUBGRAPH,
                                                              SIMULATION]))
    @settings(**_SETTINGS)
    def test_memoized_greedy_matches_reference(self, case, semantics):
        graph, queries, _ = case
        schema = AccessSchema([])  # start empty: everything needs covering
        bounds = neighbor_label_bounds(graph)
        m = max(list(bounds.values())
                + [graph.label_count(label) for label in graph.labels()],
                default=0)
        expected = _reference_greedy(queries, schema, graph, m, semantics)
        got = greedy_minimum_extension(queries, schema, graph, m, semantics)
        assert got == expected

    def test_memoized_greedy_matches_reference_on_imdb(self):
        graph, schema = imdb_like(scale=0.02, seed=7)
        base = AccessSchema([c for c in schema if c.is_type1])
        pool = PatternGenerator.from_graph(graph, rng=random.Random(3))
        queries = [pool.generate(num_nodes=3) for _ in range(4)]
        bounds = neighbor_label_bounds(graph)
        m = max(bounds.values())
        assert greedy_minimum_extension(queries, base, graph, m) \
            == _reference_greedy(queries, base, graph, m)


# ----------------------------------------------- property tests
@st.composite
def graphs_and_queries(draw):
    seed = draw(st.integers(0, 10_000))
    num_nodes = draw(st.integers(8, 24))
    graph = random_labeled_graph(num_nodes, draw(st.integers(2, 4)),
                                 draw(st.integers(num_nodes, 3 * num_nodes)),
                                 seed=seed, value_range=20)
    generator = PatternGenerator.from_graph(graph, rng=random.Random(seed + 1))
    queries = [generator.generate(num_nodes=draw(st.integers(2, 4)),
                                  num_predicates=draw(st.integers(0, 1)))
               for _ in range(draw(st.integers(2, 4)))]
    return graph, queries


@given(data=graphs_and_queries(),
       semantics=st.sampled_from([SUBGRAPH, SIMULATION]))
@settings(**_SETTINGS)
def test_extension_preserves_bounded_queries(data, semantics):
    """Answers AND access accounting of already-bounded queries are
    byte-identical before and after any extension."""
    from repro.accounting import AccessStats

    graph, queries = data
    schema = discover_schema(graph, type1_max=3, unit_max=2)
    engine = QueryEngine.open(graph, AccessSchema(list(schema)))
    bounded, unbounded = [], []
    for q in queries:
        (bounded if is_effectively_bounded(q, engine.schema,
                                           semantics).bounded
         else unbounded).append(q)
    before = {}
    for i, q in enumerate(bounded):
        stats = AccessStats()
        run = engine.query(q, semantics, stats=stats)
        before[i] = (canonical_answer(semantics, run.answer),
                     stats.as_dict())
    if unbounded:
        try:
            plan = plan_extension(engine, unbounded, semantics=semantics)
        except ExtensionError:
            return  # labels absent from G: nothing to extend with
        engine.extend_schema(plan.added)
    else:
        # No unbounded queries: extend with the maximal extension anyway.
        plan = plan_extension(engine, queries, m=10 ** 6,
                              semantics=semantics)
        engine.extend_schema(plan.added)
    for i, q in enumerate(bounded):
        stats = AccessStats()
        run = engine.query(q, semantics, stats=stats, refresh=True)
        assert canonical_answer(semantics, run.answer) == before[i][0]
        assert stats.as_dict() == before[i][1]


@given(data=graphs_and_queries(),
       semantics=st.sampled_from([SUBGRAPH, SIMULATION]))
@settings(**_SETTINGS)
def test_rescued_answers_match_cold_engine_on_extended_schema(data,
                                                              semantics):
    """A rescued query answers exactly like a cold engine opened
    directly on A_M."""
    graph, queries = data
    base = AccessSchema(list(discover_schema(graph, type1_max=3,
                                             unit_max=2)))
    engine = QueryEngine.open(graph, AccessSchema(list(base)))
    unbounded = [q for q in queries
                 if not is_effectively_bounded(q, base, semantics).bounded]
    if not unbounded:
        return
    try:
        plan = plan_extension(engine, unbounded, semantics=semantics)
    except ExtensionError:
        return
    engine.extend_schema(plan.added)

    cold_schema = AccessSchema(list(base))
    for constraint in plan.added:
        cold_schema.add(constraint)
    cold = QueryEngine.open(graph, cold_schema)
    for q in unbounded:
        rescued = engine.query(q, semantics)
        reference = cold.query(q, semantics)
        assert canonical_answer(semantics, rescued.answer) \
            == canonical_answer(semantics, reference.answer)


@given(position=st.floats(0.0, 1.0), flip=st.integers(1, 255),
       seed=st.integers(0, 1000))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_extended_sharded_artifact_detects_corruption(tmp_path_factory,
                                                      position, flip, seed):
    """Flipping one byte anywhere in an *extended* sharded artifact —
    including catalog.json and the incrementally added index payloads —
    raises a typed artifact error at open, never a quiet wrong answer."""
    tmp_path = tmp_path_factory.mktemp("ext-corrupt")
    graph = random_labeled_graph(16, 3, 40, seed=seed, value_range=10)
    schema = discover_schema(graph, type1_max=3, unit_max=2)
    engine = QueryEngine.open(graph, AccessSchema(list(schema)))
    engine.save(tmp_path / "art", shards=2)
    sharded = QueryEngine.open_path(tmp_path / "art", strategy="scatter")
    generator = PatternGenerator.from_graph(graph,
                                            rng=random.Random(seed + 1))
    queries = [generator.generate(num_nodes=2) for _ in range(3)]
    try:
        plan = plan_extension(sharded, queries, m=10 ** 6)
    except ExtensionError:
        return
    sharded.extend_schema(plan.added)
    save_extended_sharded(sharded, tmp_path / "art", tmp_path / "ext")

    targets = sorted(p for p in (tmp_path / "ext").rglob("*")
                     if p.is_file() and p.name != persist.MANIFEST_FILE)
    target = targets[int(position * len(targets)) % len(targets)]
    blob = bytearray(target.read_bytes())
    if not blob:
        return
    blob[int(position * (len(blob) - 1))] ^= flip
    target.write_bytes(bytes(blob))
    with pytest.raises(ArtifactError):
        engine = QueryEngine.open_path(tmp_path / "ext")
        # Inline shard loads verify eagerly; reaching here means the
        # flip landed in a top-level file consumed at first use.
        engine.query(queries[0])


# --------------------------------------------------------- CLI
class TestExtendCli:
    def test_extend_cli_single(self, tmp_path, capsys):
        from repro.cli import main

        graph, schema = imdb_like(scale=0.02, seed=7)
        engine = QueryEngine.open(graph, AccessSchema(list(schema)))
        engine.save(tmp_path / "art")
        pattern_file = tmp_path / "u.pat"
        pattern_file.write_text(UNBOUNDED + "\n", encoding="utf-8")
        assert main(["extend", "--artifact", str(tmp_path / "art"),
                     "--pattern", str(pattern_file),
                     "--out", str(tmp_path / "ext")]) == 0
        out = capsys.readouterr().out
        assert "schema v0 -> v1" in out
        assert "index-size delta" in out
        loaded = QueryEngine.open_path(tmp_path / "ext")
        assert loaded.schema_version == 1
        assert len(loaded.query(parse_pattern(UNBOUNDED)).answer) > 0

    def test_extend_cli_workload_file_sharded_in_place(self, tmp_path,
                                                       capsys):
        from repro.cli import main

        graph, schema = imdb_like(scale=0.02, seed=7)
        engine = QueryEngine.open(graph, AccessSchema(list(schema)))
        engine.save(tmp_path / "art", shards=2)
        workload = tmp_path / "w.txt"
        workload.write_text(f"# rescue these\n{UNBOUNDED}\n\n",
                            encoding="utf-8")
        assert main(["extend", "--artifact", str(tmp_path / "art"),
                     "--workload", str(workload)]) == 0
        assert "v0 -> v1" in capsys.readouterr().out
        loaded = QueryEngine.open_path(tmp_path / "art")
        assert loaded.schema_version == 1

    def test_extend_cli_nothing_to_do(self, tmp_path, capsys):
        from repro.cli import main

        graph, schema = imdb_like(scale=0.02, seed=7)
        QueryEngine.open(graph, AccessSchema(list(schema))).save(
            tmp_path / "art")
        pattern_file = tmp_path / "q.pat"
        pattern_file.write_text(BOUNDED + "\n", encoding="utf-8")
        assert main(["extend", "--artifact", str(tmp_path / "art"),
                     "--pattern", str(pattern_file)]) == 0
        assert "nothing to extend" in capsys.readouterr().out

    def test_extend_cli_requires_queries(self, tmp_path, capsys):
        from repro.cli import main

        graph, schema = imdb_like(scale=0.02, seed=7)
        QueryEngine.open(graph, AccessSchema(list(schema))).save(
            tmp_path / "art")
        assert main(["extend", "--artifact", str(tmp_path / "art")]) == 2

    def test_extend_cli_out_written_even_when_nothing_to_add(self, tmp_path,
                                                             capsys):
        """--out is a promise: a follow-up `repro run --artifact OUT`
        must work even when the workload was already bounded."""
        from repro.cli import main

        graph, schema = imdb_like(scale=0.02, seed=7)
        QueryEngine.open(graph, AccessSchema(list(schema))).save(
            tmp_path / "art")
        pattern_file = tmp_path / "q.pat"
        pattern_file.write_text(BOUNDED + "\n", encoding="utf-8")
        assert main(["extend", "--artifact", str(tmp_path / "art"),
                     "--pattern", str(pattern_file),
                     "--out", str(tmp_path / "copy")]) == 0
        out = capsys.readouterr().out
        assert "nothing to extend" in out and "copied" in out
        loaded = QueryEngine.open_path(tmp_path / "copy")
        assert loaded.schema_version == 0
        assert len(loaded.query(parse_pattern(BOUNDED)).answer) > 0

    def test_extend_cli_refuses_v2_artifacts(self, tmp_path, capsys):
        """On-disk extension of a v2 artifact would silently invent a
        catalog history for it; the CLI must demand a re-compile."""
        from repro.cli import main

        graph, schema = imdb_like(scale=0.02, seed=7)
        QueryEngine.open(graph, AccessSchema(list(schema))).save(
            tmp_path / "art")
        _downgrade_to_v2(tmp_path / "art")
        pattern_file = tmp_path / "u.pat"
        pattern_file.write_text(UNBOUNDED + "\n", encoding="utf-8")
        assert main(["extend", "--artifact", str(tmp_path / "art"),
                     "--pattern", str(pattern_file)]) == 1
        assert "read-only" in capsys.readouterr().err
        # The artifact was not touched: still v2, still opens.
        engine = QueryEngine.open_path(tmp_path / "art")
        assert engine.catalog.generations[0].provenance["origin"] \
            == "v2-artifact"


# ------------------------------------------------- server rescue
class TestServerRescue:
    @pytest.fixture()
    def rescue_server(self):
        from repro.server import QueryService, ServerThread

        graph, schema = imdb_like(scale=0.02, seed=7)
        engine = QueryEngine.open(graph, AccessSchema(list(schema)))
        service = QueryService(engine, workers=2, extend_budget=10 ** 6)
        with ServerThread(service) as handle:
            yield handle, service

    def test_reject_extend_readmit_answer(self, rescue_server):
        from repro.server import ServeClient

        handle, service = rescue_server
        with ServeClient(handle.host, handle.port) as client:
            before = client.metrics()
            assert before["schema_version"] == 0
            result = client.query(UNBOUNDED)
            assert result.answer_count > 0
            after = client.metrics()
            assert after["rescued"] == 1
            assert after["schema_version"] == 1
            assert after["rejected"]["unbounded"] == 1
            assert after["bounded_fraction"] == 1.0
            # Second submission admits directly — no second rescue.
            client.query(UNBOUNDED)
            final = client.metrics()
            assert final["rescued"] == 1
            assert final["schema_version"] == 1

    def test_rescue_disabled_still_rejects(self, imdb_engine):
        from repro.server import QueryService, ServeClient, ServerThread

        service = QueryService(imdb_engine, workers=2)
        assert not service.can_rescue
        with ServerThread(service) as handle:
            with ServeClient(handle.host, handle.port) as client:
                with pytest.raises(NotEffectivelyBounded):
                    client.query(UNBOUNDED)
                snapshot = client.metrics()
                assert snapshot["rejected"]["unbounded"] == 1
                assert snapshot["bounded_fraction"] == 0.0

    def test_unrescuable_query_fails_typed(self, rescue_server):
        from repro.server import ServeClient

        handle, _ = rescue_server
        with ServeClient(handle.host, handle.port) as client:
            with pytest.raises(NotEffectivelyBounded):
                client.query("x: nolabel; y: nolabel2; x -> y")
            snapshot = client.metrics()
            assert snapshot["rescue_failed"] == 1

    def test_failed_rescue_is_negatively_cached(self, rescue_server,
                                                monkeypatch):
        """A repeated unrescuable query must fail fast from the cached
        verdict, not re-run extension planning on every request."""
        from repro.server import service as service_module

        handle, service = rescue_server
        calls = []
        real_plan = service_module.plan_extension

        def counting_plan(*args, **kwargs):
            calls.append(1)
            return real_plan(*args, **kwargs)

        monkeypatch.setattr(service_module, "plan_extension", counting_plan)
        for _ in range(3):
            with pytest.raises(NotEffectivelyBounded):
                service.rescue("x: nolabel; y: nolabel2; x -> y")
        assert len(calls) == 1  # planned once, then the cached verdict
        assert service.metrics.rescue_failed == 3
        # A successful rescue bumps the generation, which invalidates
        # the cached failure: the next attempt plans again.
        service.rescue(UNBOUNDED)
        with pytest.raises(NotEffectivelyBounded):
            service.rescue("x: nolabel; y: nolabel2; x -> y")
        assert len(calls) == 3

    def test_concurrent_rescues_converge(self):
        import threading

        from repro.server import QueryService

        graph, schema = imdb_like(scale=0.02, seed=7)
        engine = QueryEngine.open(graph, AccessSchema(list(schema)))
        service = QueryService(engine, workers=4, extend_budget=10 ** 6)
        results, errors = [], []

        def rescue_one():
            try:
                results.append(service.rescue(UNBOUNDED))
            except Exception as exc:  # noqa: BLE001 — recorded for assert
                errors.append(exc)

        threads = [threading.Thread(target=rescue_one) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 6
        # One extension happened; the rest re-admitted on its generation.
        assert engine.schema_version == 1
        assert service.metrics.rescued == 6

    def test_reload_clears_rescue_failure_cache(self, tmp_path,
                                                monkeypatch):
        """A hot reload swaps graphs; failure verdicts cached against
        the old engine must not fast-fail queries the new one rescues."""
        from repro.server import QueryService
        from repro.server import service as service_module

        graph, schema = imdb_like(scale=0.02, seed=7)
        engine = QueryEngine.open(graph, AccessSchema(list(schema)))
        engine.save(tmp_path / "art")
        service = QueryService(QueryEngine.open_path(tmp_path / "art"),
                               workers=2, extend_budget=0)  # budget too small
        with pytest.raises(NotEffectivelyBounded):
            service.rescue(UNBOUNDED)
        assert service.metrics.rescue_failed == 1
        service.reload_artifact(tmp_path / "art")
        service.extend_budget = 10 ** 6
        # Without the clear, the cached v0 failure would short-circuit.
        admitted = service.rescue(UNBOUNDED)
        assert admitted.cost > 0
        assert service.metrics.rescued == 1

    def test_over_budget_rescue_not_counted_rescued(self):
        """A rescue whose re-prepared plan exceeds max_cost is an
        AdmissionRejected, and must not count as rescued."""
        from repro.errors import AdmissionRejected
        from repro.server import QueryService

        graph, schema = imdb_like(scale=0.02, seed=7)
        engine = QueryEngine.open(graph, AccessSchema(list(schema)))
        service = QueryService(engine, workers=2, extend_budget=10 ** 6,
                               max_cost=0.5)
        with pytest.raises(AdmissionRejected):
            service.rescue(UNBOUNDED)
        assert service.metrics.rescued == 0
        assert service.metrics.rejected_over_budget == 1

    def test_service_snapshot_carries_schema_fields(self, rescue_server):
        _, service = rescue_server
        snapshot = service.snapshot()
        assert snapshot["extend_budget"] == 10 ** 6
        assert "schema_version" in snapshot
        assert "bounded_fraction" in snapshot
        assert snapshot["engine"]["schema_version"] \
            == snapshot["schema_version"]


# --------------------------------------------- reporting summary
def test_boundedness_summary_columns():
    from repro.bench.reporting import boundedness_summary

    row = boundedness_summary({"schema_version": 2, "bounded_fraction": 0.5,
                               "rescued": 3, "rescue_failed": 1},
                              prefix="srv_")
    assert row == {"srv_schema_version": 2, "srv_bounded_fraction": 0.5,
                   "srv_rescued": 3, "srv_rescue_failed": 1}
