"""Tests for constraint indexes: O(N) fetch semantics and validation."""

import pytest

from repro import AccessConstraint, AccessSchema, AccessStats, Graph, SchemaIndex
from repro.constraints.index import ConstraintIndex
from repro.errors import ConstraintViolation, SchemaError


@pytest.fixture()
def award_graph():
    """Two years, two awards, movies connected to (year, award) pairs."""
    g = Graph()
    y1 = g.add_node("year", value=2012)
    y2 = g.add_node("year", value=2013)
    a1 = g.add_node("award")
    a2 = g.add_node("award")
    m1 = g.add_node("movie")
    m2 = g.add_node("movie")
    m3 = g.add_node("movie")
    for m, y, a in [(m1, y1, a1), (m2, y1, a1), (m3, y2, a2)]:
        g.add_edge(m, y)
        g.add_edge(m, a)
    return g, (y1, y2, a1, a2, m1, m2, m3)


class TestType1Index:
    def test_fetch_all_labeled(self, award_graph):
        g, (_, _, _, _, m1, m2, m3) = award_graph
        idx = ConstraintIndex(AccessConstraint((), "movie", 3), g)
        assert set(idx.fetch(())) == {m1, m2, m3}

    def test_satisfied(self, award_graph):
        g, _ = award_graph
        assert ConstraintIndex(AccessConstraint((), "movie", 3), g).is_satisfied()
        assert not ConstraintIndex(AccessConstraint((), "movie", 2), g).is_satisfied()

    def test_empty_graph(self):
        idx = ConstraintIndex(AccessConstraint((), "x", 5), Graph())
        assert idx.fetch(()) == ()
        assert idx.is_satisfied()


class TestGeneralIndex:
    def test_pair_fetch_matches_common_neighbors(self, award_graph):
        g, (y1, y2, a1, a2, m1, m2, m3) = award_graph
        idx = ConstraintIndex(AccessConstraint(("year", "award"), "movie", 4), g)
        # Canonical key order: sorted source labels = (award, year).
        assert set(idx.fetch((a1, y1))) == {m1, m2}
        assert set(idx.fetch((a2, y2))) == {m3}
        assert idx.fetch((a2, y1)) == ()

    def test_fetch_nodes_any_order(self, award_graph):
        g, (y1, _, a1, _, m1, m2, _) = award_graph
        idx = ConstraintIndex(AccessConstraint(("year", "award"), "movie", 4), g)
        assert set(idx.fetch_nodes([y1, a1], g)) == {m1, m2}
        assert set(idx.fetch_nodes([a1, y1], g)) == {m1, m2}

    def test_fetch_agrees_with_brute_force(self, award_graph):
        g, (y1, y2, a1, a2, *_ ) = award_graph
        idx = ConstraintIndex(AccessConstraint(("year", "award"), "movie", 4), g)
        for y in (y1, y2):
            for a in (a1, a2):
                brute = {v for v in g.common_neighbors([y, a])
                         if g.label_of(v) == "movie"}
                assert set(idx.fetch((a, y))) == brute

    def test_unit_index(self, award_graph):
        g, (y1, _, _, _, m1, m2, _) = award_graph
        idx = ConstraintIndex(AccessConstraint(("movie",), "year", 1), g)
        assert idx.fetch((m1,)) == (y1,)

    def test_max_entry_and_violations(self, award_graph):
        g, _ = award_graph
        idx = ConstraintIndex(AccessConstraint(("year", "award"), "movie", 1), g)
        assert idx.max_entry == 2
        assert not idx.is_satisfied()
        assert len(idx.violations()) == 1

    def test_canonical_key_rejects_wrong_labels(self, award_graph):
        g, (y1, y2, *_ ) = award_graph
        idx = ConstraintIndex(AccessConstraint(("year", "award"), "movie", 4), g)
        with pytest.raises(SchemaError):
            idx.canonical_key([y1, y2], g)  # two years, no award
        with pytest.raises(SchemaError):
            idx.canonical_key([y1], g)      # missing label

    def test_size_counts_cells(self, award_graph):
        g, _ = award_graph
        idx = ConstraintIndex(AccessConstraint(("movie",), "year", 1), g)
        # Three movies, one year each: 3 keys x (1 key member + 1 payload).
        assert idx.size == 6

    def test_stats_recording(self, award_graph):
        g, (y1, _, a1, *_ ) = award_graph
        idx = ConstraintIndex(AccessConstraint(("year", "award"), "movie", 4), g)
        stats = AccessStats()
        idx.fetch((a1, y1), stats=stats)
        assert stats.index_fetches == 1
        assert stats.nodes_fetched == 2
        assert stats.distinct_nodes == 2


class TestSchemaIndex:
    def test_validate_passes(self, award_graph):
        g, _ = award_graph
        schema = AccessSchema([AccessConstraint(("year", "award"), "movie", 4),
                               AccessConstraint((), "year", 2)])
        SchemaIndex(g, schema, validate=True)  # no raise

    def test_validate_raises_with_witness(self, award_graph):
        g, _ = award_graph
        schema = AccessSchema([AccessConstraint(("year", "award"), "movie", 1)])
        with pytest.raises(ConstraintViolation) as info:
            SchemaIndex(g, schema, validate=True)
        assert info.value.count == 2

    def test_satisfied_flag(self, award_graph):
        g, _ = award_graph
        good = AccessSchema([AccessConstraint((), "movie", 3)])
        bad = AccessSchema([AccessConstraint((), "movie", 1)])
        assert SchemaIndex(g, good).satisfied()
        assert not SchemaIndex(g, bad).satisfied()

    def test_fetch_through_schema(self, award_graph):
        g, (y1, _, a1, _, m1, m2, _) = award_graph
        c = AccessConstraint(("year", "award"), "movie", 4)
        sx = SchemaIndex(g, AccessSchema([c]))
        assert set(sx.fetch(c, (a1, y1))) == {m1, m2}

    def test_unknown_constraint(self, award_graph):
        g, _ = award_graph
        sx = SchemaIndex(g, AccessSchema())
        with pytest.raises(SchemaError):
            sx.fetch(AccessConstraint((), "x", 1), ())

    def test_add_constraint(self, award_graph):
        g, _ = award_graph
        sx = SchemaIndex(g, AccessSchema())
        c = AccessConstraint((), "movie", 3)
        sx.add_constraint(c)
        assert set(sx.fetch(c, ())) == set(g.nodes_with_label("movie"))
        # idempotent
        assert sx.add_constraint(c) is sx.index_for(c)

    def test_total_size_and_size_for(self, award_graph):
        g, _ = award_graph
        c1 = AccessConstraint(("movie",), "year", 1)
        c2 = AccessConstraint((), "movie", 3)
        sx = SchemaIndex(g, AccessSchema([c1, c2]))
        assert sx.total_size == sx.index_for(c1).size + sx.index_for(c2).size
        assert sx.size_for([c1]) == sx.index_for(c1).size

    def test_dataset_schemas_satisfied(self, imdb_small, dbpedia_small, web_small):
        for graph, schema in (imdb_small, dbpedia_small, web_small):
            assert SchemaIndex(graph, schema).satisfied(), \
                "generated dataset must satisfy its declared schema"
