"""Tests for GraphDelta application and dirty-set reporting."""

import pytest

from repro.errors import GraphError
from repro.graph import Graph, GraphDelta


@pytest.fixture()
def base():
    g = Graph()
    a = g.add_node("a")
    b = g.add_node("b")
    c = g.add_node("c")
    g.add_edge(a, b)
    g.add_edge(b, c)
    return g


class TestApply:
    def test_add_edge_dirty_endpoints(self, base):
        delta = GraphDelta().add_edge(0, 2)
        dirty = delta.apply(base)
        assert base.has_edge(0, 2)
        assert dirty == {0, 2}

    def test_remove_edge(self, base):
        delta = GraphDelta().remove_edge(0, 1)
        dirty = delta.apply(base)
        assert not base.has_edge(0, 1)
        assert dirty == {0, 1}

    def test_add_node_then_edge(self, base):
        delta = GraphDelta().add_node(10, "d", value=5).add_edge(10, 0)
        dirty = delta.apply(base)
        assert base.label_of(10) == "d"
        assert base.value_of(10) == 5
        assert base.has_edge(10, 0)
        assert dirty == {10, 0}

    def test_remove_node_reports_neighbours(self, base):
        delta = GraphDelta().remove_node(1)
        dirty = delta.apply(base)
        assert not base.has_node(1)
        assert dirty == {0, 2}

    def test_removed_node_not_in_dirty_even_if_touched_before(self, base):
        delta = GraphDelta().add_edge(0, 2).remove_node(0)
        dirty = delta.apply(base)
        assert 0 not in dirty
        assert 2 in dirty

    def test_insert_without_label_rejected(self, base):
        from repro.graph.delta import NodeChange
        delta = GraphDelta()
        delta.changes.append(NodeChange(True, 42))
        with pytest.raises(GraphError):
            delta.apply(base)

    def test_len_and_iter(self):
        delta = GraphDelta().add_edge(0, 1).remove_edge(1, 2)
        assert len(delta) == 2
        assert len(list(delta)) == 2

    def test_ordered_application(self):
        g = Graph()
        g.add_node("a", node_id=0)
        delta = (GraphDelta()
                 .add_node(1, "b")
                 .add_edge(0, 1)
                 .remove_edge(0, 1)
                 .remove_node(1))
        dirty = delta.apply(g)
        assert not g.has_node(1)
        assert dirty == {0}
