"""Byte-identical equivalence of the vectorized array-kernel executor.

The contract pinned here is strict: for any plan the vectorized executor
(:func:`repro.core.kernels.execute_plan_vectorized`) must produce the
same candidates, the same ``G_Q`` (nodes, labels, values, edges), and
the *same accounting* — every counter of
:class:`~repro.accounting.AccessStats` including the deduplicated
``_seen`` set — as the reference sequential executor. Properties are
drawn hypothesis-style over random graphs/patterns/semantics, over both
edge modes, over shard counts {1, 2, 4} served through the merged view,
and over warm-started (memoryview) vs freshly built (array) CSR buffers.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AccessStats, SchemaIndex, ebchk, execute_plan, qplan, \
    sebchk, sqplan
from repro.constraints.discovery import discover_schema
from repro.core.executor import MODE_PLAN, MODE_PROBE
from repro.core.kernels import can_vectorize, execute_plan_vectorized
from repro.errors import EngineError
from repro.graph.frozen import FrozenGraph
from repro.graph.generators import random_labeled_graph
from repro.graph.partition import build_shard_indexes, merge_shard_runtimes, \
    partition_graph
from repro.pattern.generator import PatternGenerator

_SETTINGS = dict(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


@st.composite
def graph_and_pattern(draw, max_nodes=40, num_labels=4):
    seed = draw(st.integers(0, 10_000))
    num_nodes = draw(st.integers(8, max_nodes))
    num_edges = draw(st.integers(num_nodes, 3 * num_nodes))
    graph = random_labeled_graph(num_nodes, num_labels, num_edges,
                                 seed=seed, value_range=20)
    if graph.num_edges == 0:
        v = list(graph.nodes())
        graph.add_edge(v[0], v[1])
    rng = random.Random(seed + 1)
    generator = PatternGenerator.from_graph(graph, rng=rng)
    pattern = generator.generate(
        num_nodes=draw(st.integers(2, 4)),
        num_predicates=draw(st.integers(0, 2)))
    return graph, pattern, seed


def _plan_for(pattern, schema, semantics):
    if semantics == "subgraph":
        if not ebchk(pattern, schema).bounded:
            return None
        return qplan(pattern, schema)
    if not sebchk(pattern, schema).bounded:
        return None
    return sqplan(pattern, schema)


def _gq_snapshot(gq):
    return (sorted((v, gq.label_of(v), gq.value_of(v)) for v in gq.nodes()),
            sorted(gq.edges()))


def assert_byte_identical(seq, vec, seq_stats, vec_stats):
    assert vec.candidates == seq.candidates
    assert _gq_snapshot(vec.gq) == _gq_snapshot(seq.gq)
    assert vec_stats.as_dict() == seq_stats.as_dict()
    assert vec_stats._seen == seq_stats._seen


def run_both(plan, seq_index, vec_index, edge_mode=MODE_PLAN):
    seq_stats, vec_stats = AccessStats(), AccessStats()
    seq = execute_plan(plan, seq_index, stats=seq_stats,
                       edge_mode=edge_mode)
    vec = execute_plan_vectorized(plan, vec_index, stats=vec_stats,
                                  edge_mode=edge_mode)
    assert_byte_identical(seq, vec, seq_stats, vec_stats)
    return seq


@given(data=graph_and_pattern(),
       semantics=st.sampled_from(["subgraph", "simulation"]),
       edge_mode=st.sampled_from([MODE_PLAN, MODE_PROBE]))
@settings(**_SETTINGS)
def test_vectorized_equals_sequential(data, semantics, edge_mode):
    """Same plan, same index: candidates, G_Q and every stats counter
    (including the deduplicated ``_seen`` set) are identical."""
    graph, pattern, _ = data
    schema = discover_schema(graph, type1_max=1000, unit_max=1000)
    plan = _plan_for(pattern, schema, semantics)
    if plan is None:
        return
    frozen = FrozenGraph.from_graph(graph)
    sx = SchemaIndex(frozen, schema, frozen=True)
    assert can_vectorize(sx)
    run_both(plan, sx, sx, edge_mode=edge_mode)


@given(data=graph_and_pattern(), shards=st.sampled_from([1, 2, 4]))
@settings(**_SETTINGS)
def test_merged_shard_view_equals_direct_index(data, shards):
    """Shard -> merge -> vectorize is invisible: executing over the
    merged view of a {1,2,4}-way partition matches the direct frozen
    index byte for byte."""
    from repro.engine.parallel import ShardRuntime

    graph, pattern, _ = data
    schema = discover_schema(graph, type1_max=1000, unit_max=1000)
    plan = _plan_for(pattern, schema, "subgraph")
    if plan is None:
        return
    direct = SchemaIndex(FrozenGraph.from_graph(graph), schema, frozen=True)

    part = partition_graph(graph, shards)
    shard_indexes = build_shard_indexes(part, schema)
    runtimes = [ShardRuntime(shard.shard_id, shard.graph, sx_i,
                             list(shard.owned))
                for shard, sx_i in zip(part.shards, shard_indexes)]
    merged_graph, merged_index = merge_shard_runtimes(runtimes, schema)
    assert merged_graph.num_nodes == graph.num_nodes
    assert merged_graph.num_edges == graph.num_edges
    assert can_vectorize(merged_index)
    run_both(plan, direct, merged_index)


@given(data=graph_and_pattern())
@settings(**_SETTINGS)
def test_warm_started_buffers_equal_fresh(data):
    """A graph rebuilt from serialized CSR buffers (memoryview-backed,
    the warm-start path) executes identically to the freshly frozen
    (array-backed) one."""
    graph, pattern, _ = data
    schema = discover_schema(graph, type1_max=1000, unit_max=1000)
    plan = _plan_for(pattern, schema, "subgraph")
    if plan is None:
        return
    fresh = FrozenGraph.from_graph(graph)
    buffers, meta = fresh.to_buffers()
    warm = FrozenGraph.from_buffers(
        {name: memoryview(bytes(memoryview(buf))).cast("q")
         for name, buf in buffers.items()},
        meta)
    sx_fresh = SchemaIndex(fresh, schema, frozen=True)
    sx_warm = SchemaIndex(warm, schema, frozen=True)
    seq_stats, warm_stats = AccessStats(), AccessStats()
    seq = execute_plan_vectorized(plan, sx_fresh, stats=seq_stats)
    vec = execute_plan_vectorized(plan, sx_warm, stats=warm_stats)
    assert_byte_identical(seq, vec, seq_stats, warm_stats)


def test_can_vectorize_requires_frozen_session():
    graph = random_labeled_graph(10, 2, 20, seed=3, value_range=5)
    schema = discover_schema(graph)
    mutable = SchemaIndex(graph, schema)
    assert not can_vectorize(mutable)
    rng = random.Random(5)
    pattern = PatternGenerator.from_graph(graph, rng=rng).generate(
        num_nodes=2)
    plan = _plan_for(pattern, schema, "subgraph")
    if plan is None:
        pytest.skip("random workload unbounded under discovered schema")
    with pytest.raises(EngineError, match="vectorized"):
        execute_plan_vectorized(plan, mutable)


def test_probe_memo_preserves_accounting():
    """The sequential probe memo (and its vectorized twin) must keep the
    paper's edge-check arithmetic: a memo hit still records
    ``|A| * |B|`` checks, so stats stay identical to the unmemoized
    reading."""
    graph = random_labeled_graph(30, 3, 90, seed=9, value_range=10)
    schema = discover_schema(graph, type1_max=1000, unit_max=1000)
    rng = random.Random(10)
    generator = PatternGenerator.from_graph(graph, rng=rng)
    frozen = FrozenGraph.from_graph(graph)
    sx = SchemaIndex(frozen, schema, frozen=True)
    checked = 0
    for _ in range(20):
        pattern = generator.generate(num_nodes=3)
        plan = _plan_for(pattern, schema, "subgraph")
        if plan is None:
            continue
        seq_stats, vec_stats = AccessStats(), AccessStats()
        expected = sum(
            len(pool_a) * len(pool_b)
            for pool_a, pool_b in _probe_pools(plan, sx, graph))
        execute_plan(plan, sx, stats=seq_stats, edge_mode=MODE_PROBE)
        execute_plan_vectorized(plan, sx, stats=vec_stats,
                                edge_mode=MODE_PROBE)
        assert seq_stats.edges_checked == expected
        assert vec_stats.edges_checked == expected
        checked += 1
    assert checked > 0


def _probe_pools(plan, sx, graph):
    """Candidate-pool sizes per pattern edge, recomputed independently
    of either executor's memoization."""
    result = execute_plan(plan, sx, edge_mode=MODE_PROBE)
    for u, v in plan.pattern.edges():
        yield result.candidates.get(u, set()), result.candidates.get(v, set())
