"""FrozenGraph must behave identically to Graph on the read interface."""

import pytest

from repro import FrozenGraph, Graph
from repro.errors import GraphError
from repro.graph.generators import random_labeled_graph


@pytest.fixture()
def pair(tiny_graph):
    return tiny_graph, FrozenGraph.from_graph(tiny_graph)


class TestEquivalence:
    def test_nodes(self, pair):
        g, fz = pair
        assert sorted(fz.nodes()) == sorted(g.nodes())

    def test_counts(self, pair):
        g, fz = pair
        assert fz.num_nodes == g.num_nodes
        assert fz.num_edges == g.num_edges
        assert fz.size == g.size

    def test_labels_values(self, pair):
        g, fz = pair
        for v in g.nodes():
            assert fz.label_of(v) == g.label_of(v)
            assert fz.value_of(v) == g.value_of(v)

    def test_adjacency(self, pair):
        g, fz = pair
        for v in g.nodes():
            assert set(fz.out_neighbors(v)) == set(g.out_neighbors(v))
            assert set(fz.in_neighbors(v)) == set(g.in_neighbors(v))
            assert fz.neighbors(v) == g.neighbors(v)

    def test_has_edge(self, pair):
        g, fz = pair
        for v in g.nodes():
            for w in g.nodes():
                assert fz.has_edge(v, w) == g.has_edge(v, w)

    def test_label_index(self, pair):
        g, fz = pair
        for label in g.labels():
            assert set(fz.nodes_with_label(label)) == set(g.nodes_with_label(label))
        assert fz.labels() == g.labels()

    def test_degrees(self, pair):
        g, fz = pair
        for v in g.nodes():
            assert fz.out_degree(v) == g.out_degree(v)
            assert fz.in_degree(v) == g.in_degree(v)

    def test_random_graph_equivalence(self):
        g = random_labeled_graph(120, 6, 400, seed=3)
        fz = FrozenGraph.from_graph(g)
        assert sorted(fz.nodes()) == sorted(g.nodes())
        for v in g.nodes():
            assert set(fz.out_neighbors(v)) == g.out_neighbors(v)
            assert set(fz.in_neighbors(v)) == g.in_neighbors(v)
        assert fz.num_edges == g.num_edges


class TestFrozenSpecific:
    def test_unknown_node_raises(self, pair):
        _, fz = pair
        with pytest.raises(GraphError):
            fz.label_of(999)

    def test_has_edge_unknown_source_is_false(self, pair):
        _, fz = pair
        assert not fz.has_edge(999, 0)

    def test_missing_label_empty(self, pair):
        _, fz = pair
        assert fz.nodes_with_label("nope") == ()
        assert fz.label_count("nope") == 0

    def test_thaw_round_trip(self, pair):
        g, fz = pair
        thawed = fz.thaw()
        assert isinstance(thawed, Graph)
        assert set(thawed.edges()) == set(g.edges())
        assert {v: thawed.label_of(v) for v in thawed.nodes()} == \
               {v: g.label_of(v) for v in g.nodes()}

    def test_preserves_node_ids(self):
        g = Graph()
        g.add_node("x", node_id=100)
        g.add_node("y", node_id=5)
        g.add_edge(100, 5)
        fz = FrozenGraph.from_graph(g)
        assert fz.has_edge(100, 5)
        assert fz.label_of(100) == "x"

    def test_repr(self, pair):
        _, fz = pair
        assert "FrozenGraph" in repr(fz)
