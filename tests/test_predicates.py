"""Unit tests for predicate atoms and conjunctions."""

import math

import pytest

from repro.errors import PredicateError
from repro.pattern.predicates import TRUE, Atom, Predicate


class TestAtom:
    @pytest.mark.parametrize("op,constant,value,expected", [
        ("=", 5, 5, True),
        ("=", 5, 6, False),
        ("!=", 5, 6, True),
        ("!=", 5, 5, False),
        ("<", 5, 4, True),
        ("<", 5, 5, False),
        ("<=", 5, 5, True),
        (">", 5, 6, True),
        (">", 5, 5, False),
        (">=", 5, 5, True),
        ("=", "uk", "uk", True),
        ("=", "uk", "us", False),
    ])
    def test_evaluate(self, op, constant, value, expected):
        assert Atom(op, constant).evaluate(value) is expected

    def test_none_value_fails(self):
        assert not Atom("=", 5).evaluate(None)
        assert not Atom(">=", 5).evaluate(None)

    def test_type_mismatch_is_false_not_error(self):
        assert not Atom("<", 5).evaluate("text")

    def test_unknown_operator(self):
        with pytest.raises(PredicateError):
            Atom("~", 5)

    def test_str(self):
        assert str(Atom(">=", 2011)) == ">=2011"
        assert str(Atom("=", "uk")) == '="uk"'


class TestPredicate:
    def test_true_is_trivial(self):
        assert TRUE.is_trivial
        assert TRUE.evaluate(None)
        assert TRUE.evaluate("anything")

    def test_conjunction(self):
        p = Predicate.of((">=", 2011), ("<=", 2013))
        assert p.evaluate(2012)
        assert not p.evaluate(2010)
        assert not p.evaluate(2014)

    def test_and_(self):
        p = Predicate.of((">=", 10)).and_(Predicate.of(("<", 20)))
        assert p.evaluate(15)
        assert not p.evaluate(25)

    def test_filter(self):
        p = Predicate.of((">", 2))
        assert p.filter([1, 2, 3, 4]) == [3, 4]

    def test_str(self):
        assert str(TRUE) == "true"
        assert str(Predicate.of((">=", 2011), ("<=", 2013))) == ">=2011 & <=2013"


class TestParse:
    def test_parse_empty_is_true(self):
        assert Predicate.parse("") is TRUE

    def test_parse_conjunction(self):
        p = Predicate.parse(">=2011 & <=2013")
        assert p.evaluate(2011) and p.evaluate(2013)
        assert not p.evaluate(2014)

    def test_parse_string_constant(self):
        p = Predicate.parse('="uk"')
        assert p.evaluate("uk")
        assert not p.evaluate("us")

    def test_parse_float(self):
        assert Predicate.parse(">1.5").evaluate(2.0)

    def test_parse_le_before_lt(self):
        # "<=" must not be parsed as "<" followed by "=5".
        assert Predicate.parse("<=5").evaluate(5)

    def test_parse_garbage(self):
        with pytest.raises(PredicateError):
            Predicate.parse("about 5")

    def test_parse_bad_constant(self):
        with pytest.raises(PredicateError):
            Predicate.parse(">=abc")

    def test_parse_unterminated_string(self):
        with pytest.raises(PredicateError):
            Predicate.parse('="uk')


class TestRangeHints:
    """max_distinct_values drives QPlan's Example 1 arithmetic."""

    def test_closed_integer_range(self):
        assert Predicate.of((">=", 2011), ("<=", 2013)).max_distinct_values() == 3

    def test_strict_bounds(self):
        assert Predicate.of((">", 2010), ("<", 2014)).max_distinct_values() == 3

    def test_equality_is_one(self):
        assert Predicate.of(("=", 7)).max_distinct_values() == 1
        assert Predicate.of(("=", "uk")).max_distinct_values() == 1

    def test_half_open_is_unbounded(self):
        assert Predicate.of((">=", 2011)).max_distinct_values() == math.inf
        assert Predicate.of(("<=", 2013)).max_distinct_values() == math.inf

    def test_trivial_is_unbounded(self):
        assert TRUE.max_distinct_values() == math.inf

    def test_string_range_unbounded(self):
        assert Predicate.of((">=", "a"), ("<=", "b")).max_distinct_values() == math.inf

    def test_empty_range_is_zero(self):
        assert Predicate.of((">=", 10), ("<=", 5)).max_distinct_values() == 0

    def test_not_equal_ignored(self):
        p = Predicate.of((">=", 1), ("<=", 3), ("!=", 2))
        assert p.max_distinct_values() == 3

    def test_float_bounds_non_integral_unbounded(self):
        assert Predicate.of((">=", 1.5), ("<=", 3.0)).max_distinct_values() == math.inf

    def test_integral_float_bounds_ok(self):
        assert Predicate.of((">=", 1.0), ("<=", 3.0)).max_distinct_values() == 3


class TestSatisfiability:
    def test_trivial_satisfiable(self):
        assert TRUE.is_satisfiable()

    def test_contradicting_equalities(self):
        assert not Predicate.of(("=", 1), ("=", 2)).is_satisfiable()

    def test_equality_outside_range(self):
        assert not Predicate.of(("=", 10), ("<", 5)).is_satisfiable()

    def test_empty_numeric_range(self):
        assert not Predicate.of((">", 5), ("<", 5)).is_satisfiable()

    def test_consistent(self):
        assert Predicate.of((">=", 1), ("<=", 1)).is_satisfiable()
