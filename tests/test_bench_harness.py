"""Fast smoke tests for the benchmark harness (tiny scales)."""

import pytest

from repro.bench import (
    exp1_percentages,
    exp3_algorithm_times,
    fig5_index_size,
    fig5_varying_a,
    fig5_varying_g,
    fig5_varying_q,
    fig6_instance_bounded,
    get_dataset,
    get_workload,
    render_series,
    render_table,
    timed,
    warm_start,
)
from repro.errors import BenchmarkError, MatchTimeout

SCALE = 0.01


class TestDatasets:
    def test_get_dataset_memoized(self):
        a = get_dataset("imdb", SCALE)
        b = get_dataset("imdb", SCALE)
        assert a[0] is b[0]

    def test_unknown_dataset(self):
        with pytest.raises(BenchmarkError):
            get_dataset("nope", SCALE)

    def test_workload_shape(self):
        queries = get_workload("imdb", SCALE, count=10)
        assert len(queries) == 10
        assert all(1 <= q.num_nodes <= 7 for q in queries)


class TestTimed:
    def test_returns_seconds_and_result(self):
        seconds, result = timed(lambda: 42)
        assert result == 42
        assert seconds >= 0

    def test_censors_timeouts(self):
        def boom():
            raise MatchTimeout("too slow")
        assert timed(boom) == (None, None)


class TestExperiments:
    def test_exp1(self):
        rows = exp1_percentages(datasets=("imdb",), scale=SCALE, count=20)
        assert rows[0]["dataset"] == "imdb"
        assert 0 <= rows[0]["subgraph_pct"] <= 100

    def test_fig5_varying_g(self):
        rows = fig5_varying_g("imdb", scale=SCALE, fractions=(0.5, 1.0),
                              queries_per_point=1, timeout=5)
        assert len(rows) == 2
        assert rows[1]["graph_size"] >= rows[0]["graph_size"]

    def test_fig5_varying_q(self):
        rows = fig5_varying_q("imdb", node_counts=(3,), scale=SCALE,
                              queries_per_point=1, timeout=5)
        assert rows[0]["num_nodes"] == 3

    def test_fig5_varying_a(self):
        rows = fig5_varying_a("imdb", constraint_counts=(12, 20),
                              scale=SCALE, queries_per_point=1)
        assert [r["num_constraints"] for r in rows] == [12, 20]

    def test_fig5_index_size(self):
        rows = fig5_index_size("imdb", node_counts=(3,), scale=SCALE,
                               queries_per_point=1)
        row = rows[0]
        if row["bvf2_accessed"] is not None:
            assert 0 < row["bvf2_accessed"] < 1

    def test_fig6(self):
        rows = fig6_instance_bounded("imdb", fractions=(0.5, 1.0),
                                     scale=SCALE, count=6)
        assert len(rows) == 2

    def test_exp3(self):
        rows = exp3_algorithm_times(datasets=("imdb",), scale=SCALE, count=10)
        assert rows[0]["ebchk_max_ms"] is not None


class TestWarmStart:
    def test_rows_and_artifact(self, tmp_path):
        artifact = tmp_path / "artifact"
        rows = warm_start("imdb", scale=SCALE, distinct=3, opens=2,
                          artifact=str(artifact))
        by_mode = {row["mode"]: row for row in rows}
        assert set(by_mode) == {"cold_build", "save", "warm_open",
                                "prepared_reuse"}
        assert by_mode["prepared_reuse"]["plan_cache_hits"] >= \
            by_mode["prepared_reuse"]["queries"]
        assert by_mode["warm_open"]["open_speedup"] > 1
        assert (artifact / "manifest.json").is_file()
        assert by_mode["save"]["artifact_bytes"] > 0

    def test_temp_artifact_cleaned_up(self):
        rows = warm_start("imdb", scale=SCALE, distinct=2, opens=1)
        assert len(rows) == 4

    def test_throughput_rejects_mismatched_artifact(self, tmp_path):
        from repro.bench.harness import engine_throughput
        from repro.engine import QueryEngine
        artifact = tmp_path / "artifact"
        graph, schema = get_dataset("imdb", 0.005)
        QueryEngine.open(graph, schema).save(artifact)
        with pytest.raises(BenchmarkError):
            engine_throughput("imdb", scale=SCALE, distinct=2, repeats=1,
                              artifact=str(artifact))


class TestReporting:
    def test_render_table(self):
        text = render_table([{"a": 1, "b": None}, {"a": 2.5, "b": "x"}],
                            title="T")
        assert "T" in text
        assert "a" in text and "b" in text
        assert "-" in text  # None cell

    def test_render_table_infers_columns(self):
        text = render_table([{"x": 1}, {"y": 2}])
        assert "x" in text and "y" in text

    def test_render_series(self):
        text = render_series([(1, 0.5), (2, None)], "n", "seconds", title="S")
        assert "S" in text and "seconds" in text


class TestShardScaling:
    def test_rows_and_artifact_reuse(self, tmp_path):
        from repro.bench import shard_scaling

        artifact = tmp_path / "sharded"
        rows = shard_scaling("imdb", scale=SCALE, shards=2,
                             worker_counts=(0,), distinct=3, batches=2,
                             artifact=str(artifact))
        assert (artifact / "manifest.json").is_file()
        by_mode = {row["mode"]: row for row in rows}
        assert by_mode["sequential"]["qps"] > 0
        sharded = [row for row in rows if row["mode"] == "sharded"]
        assert len(sharded) == 1
        assert sharded[0]["answers_identical"] is True
        assert sharded[0]["speedup_vs_sequential"] > 0
        assert sharded[0]["cpu_count"] >= 1
        # Second call reuses the artifact instead of re-partitioning.
        again = shard_scaling("imdb", scale=SCALE, shards=2,
                              worker_counts=(0,), distinct=3, batches=1,
                              artifact=str(artifact))
        assert [row for row in again
                if row["mode"] == "sharded"][0]["answers_identical"] is True

    def test_too_few_bounded_queries(self):
        from repro.bench import shard_scaling

        with pytest.raises(BenchmarkError):
            shard_scaling("imdb", scale=SCALE, distinct=1, batches=1,
                          worker_counts=(0,))

    def test_rejects_single_layout_artifact(self, tmp_path):
        """Pointing --artifact at a single-layout artifact (e.g. one
        warm_start wrote) fails loudly instead of mislabeling rows."""
        from repro.bench import shard_scaling

        artifact = tmp_path / "single"
        warm_start("imdb", scale=SCALE, distinct=2, opens=1,
                   artifact=str(artifact))
        with pytest.raises(BenchmarkError, match="not.*sharded"):
            shard_scaling("imdb", scale=SCALE, distinct=3, batches=1,
                          worker_counts=(0,), artifact=str(artifact))


class TestCheckRegressionShardMetrics:
    def test_truncated_shard_results_degrade_to_missing(self, tmp_path):
        """A shard.json without sharded rows (or without a workers=0
        row) must produce 'missing' metrics, not a traceback."""
        import json

        from benchmarks.check_regression import compare, current_metrics

        results = tmp_path
        for name, rows in (
                ("engine_throughput",
                 [{"mode": "prepared", "qps": 1.0},
                  {"mode": "batched", "qps": 1.0}]),
                ("kernels",
                 [{"mode": "sequential", "qps": 1.0},
                  {"mode": "vectorized", "qps": 1.0,
                   "speedup_vs_sequential": 1.0}]),
                ("warm_start",
                 [{"mode": "warm_open", "open_speedup": 1.0},
                  {"mode": "prepared_reuse", "prepare_speedup": 1.0}]),
                ("serve",
                 [{"mode": "serve_concurrent", "qps": 1.0,
                   "speedup_vs_prepared": 1.0}]),
                ("shard", [{"mode": "sequential", "qps": 1.0}]),
                ("remote", []),
                ("remote_skewed", []),
                ("extension", []),
                ("obs", []),
        ):
            (results / f"{name}.json").write_text(
                json.dumps({"rows": rows}), encoding="utf-8")
        metrics = current_metrics(results)
        assert metrics["shard"]["answers_identical"] is None
        assert metrics["shard"]["inline_qps"] is None
        # Empty remote.json / obs.json degrade the same way.
        assert metrics["remote"]["answers_identical"] is None
        assert metrics["remote"]["scatter_reduction"] is None
        assert metrics["remote_skewed"]["answers_identical"] is None
        assert metrics["remote_skewed"]["pipelined_speedup"] is None
        assert metrics["obs"]["disabled_overhead_ratio"] is None
        rows = compare({"shard": {"answers_identical": 1.0}}, metrics)
        assert rows[0]["ok"] is False  # missing fails the gate loudly
