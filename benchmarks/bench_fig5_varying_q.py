"""Fig. 5(b,f,j): evaluation time vs pattern size #n (3..7).

Paper shape: everything grows with #n; bVF2/bSim stay fast (<= 12.7 s in
the paper's setup); VF2/optVF2 fail to finish for #n > 4 on the real
datasets (here: censored or much slower at the bench scale).
"""

import pytest

from benchmarks.conftest import DATASETS, emit
from repro.bench import fig5_varying_q, render_table


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig5_varying_q(benchmark, dataset, bench_scale, bench_timeout):
    rows = benchmark.pedantic(
        fig5_varying_q,
        kwargs=dict(dataset=dataset, node_counts=(3, 4, 5, 6, 7),
                    scale=bench_scale, queries_per_point=3,
                    timeout=bench_timeout),
        rounds=1, iterations=1)
    emit(render_table(rows, title=f"Fig. 5 (varying #n) on {dataset}: "
                                  f"seconds per query (None = censored)"))

    # Bounded evaluation completes within the budget at every size it was
    # attempted (direct matchers may be censored -> None).
    for row in rows:
        if row["bvf2"] is not None:
            assert row["bvf2"] < bench_timeout
        if row["bsim"] is not None:
            assert row["bsim"] < bench_timeout
    assert any(row["bvf2"] is not None or row["bsim"] is not None
               for row in rows)
