"""Observability overhead: tracing must be near-free when disabled.

The contract the tracing layer (:mod:`repro.obs.trace`) commits to:
instrumented hot paths cost one ``ContextVar`` read per instrumentation
point when no span is active, so the shipped default (no recorder) must
serve prepared queries within a few percent of fully uninstrumented
code. This bench measures three modes over the same prepared workload
(``refresh=True`` — every request pays a real execution):

* ``no_obs`` — ``child_span`` stubbed out of the engine/executor
  modules entirely (the uninstrumented reference);
* ``tracing_disabled`` — the shipped code, no recorder (the default);
* ``tracing_enabled`` — a recorder plus an active root span per
  request (the debugging posture; informational, not gated).

Results are emitted as a text table and as one JSON line (prefixed
``OBS_JSON``) and written to ``.benchmarks/obs.json``; CI's
``bench-regression`` job checks ``disabled_overhead_ratio`` against
``benchmarks/baselines.json``.

Run directly (no pytest needed)::

    PYTHONPATH=src:. python benchmarks/bench_obs.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench import obs_overhead, render_table

#: The in-script acceptance floor: tracing-disabled prepared qps must
#: stay within 5% of the uninstrumented reference.
MIN_DISABLED_RATIO = 0.95

REFERENCE_SCALE = 0.05

RESULTS_PATH = Path(__file__).resolve().parent.parent / ".benchmarks" \
    / "obs.json"


def run(scale: float) -> list[dict]:
    rows = obs_overhead(dataset="imdb", scale=scale)
    payload = {"dataset": "imdb", "scale": scale, "rows": rows}
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                            encoding="utf-8")
    print("OBS_JSON " + json.dumps(payload))
    return rows


def check(rows: list[dict]) -> None:
    by_mode = {row["mode"]: row for row in rows}
    disabled = by_mode["tracing_disabled"]
    assert disabled["disabled_overhead_ratio"] >= MIN_DISABLED_RATIO, \
        (f"tracing-disabled prepared qps must stay within "
         f"{1 - MIN_DISABLED_RATIO:.0%} of the uninstrumented path "
         f"(got ratio {disabled['disabled_overhead_ratio']:.3f})")
    enabled = by_mode["tracing_enabled"]
    # Enabled tracing records real spans — the bench must have traced.
    assert enabled["spans_per_query"] >= 2, enabled
    assert enabled["traces_finished"] > 0


def test_obs_overhead(benchmark, bench_scale):
    rows = benchmark.pedantic(run, args=(bench_scale,),
                              rounds=1, iterations=1)
    from benchmarks.conftest import emit
    emit(render_table(rows, title=f"Observability overhead (imdb, "
                                  f"scale={bench_scale})"))
    check(rows)


def main() -> None:
    import os

    rows = run(scale=REFERENCE_SCALE)
    print(render_table(rows, title=f"Observability overhead (imdb, "
                                   f"scale={REFERENCE_SCALE})"))
    # CI sets REPRO_BENCH_SKIP_CHECK=1: there the single gate is
    # benchmarks/check_regression.py, which the 'perf-regression-ok'
    # label can skip (the JSON is still emitted and uploaded either way).
    if os.environ.get("REPRO_BENCH_SKIP_CHECK"):
        print("skipping in-script checks (REPRO_BENCH_SKIP_CHECK set)")
        return
    check(rows)


if __name__ == "__main__":
    main()
