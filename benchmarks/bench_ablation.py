"""Ablation benches for the design choices DESIGN.md calls out.

1. Worst-case-optimal plans (QPlan) vs naive first-usable plans: the
   optimizer's iterative reduction must not produce worse worst cases.
2. Counter-based cover fixpoint (Theorem 2(2)) vs general label sets.
3. Index-driven edge verification vs pairwise adjacency probing.
"""

import pytest

from benchmarks.conftest import emit
from repro import ebchk, qplan
from repro.accounting import AccessStats
from repro.bench import get_dataset, get_engine, get_workload, render_table
from repro.core.covers import compute_covers
from repro.core.executor import MODE_PLAN, MODE_PROBE


def _bounded_pool(schema, scale, count=6):
    pool = get_workload("imdb", scale, count=150, seed=77)
    return [q for q in pool if ebchk(q, schema).bounded][:count]


def test_ablation_range_hints(benchmark, bench_scale):
    """Range hints tighten worst-case estimates (never loosen them)."""
    _, schema = get_dataset("imdb", bench_scale)
    queries = _bounded_pool(schema, bench_scale)

    def build_both():
        rows = []
        for query in queries:
            with_hints = qplan(query, schema, use_range_hints=True)
            without = qplan(query, schema, use_range_hints=False)
            rows.append({
                "query": query.name,
                "with_hints": with_hints.worst_case_total_accessed,
                "without": without.worst_case_total_accessed,
            })
        return rows

    rows = benchmark.pedantic(build_both, rounds=1, iterations=1)
    emit(render_table(rows, title="Ablation: worst-case access bound with "
                                  "vs without predicate range hints"))
    for row in rows:
        assert row["with_hints"] <= row["without"]


def test_ablation_counter_fixpoint(benchmark, bench_scale):
    """Counter vs set-based cover computation: identical covers."""
    _, schema = get_dataset("imdb", bench_scale)
    queries = get_workload("imdb", bench_scale, count=60, seed=78)

    def run(use_counters):
        return [compute_covers(q, schema, "subgraph",
                               use_counters=use_counters).node_cover
                for q in queries]

    with_counters = benchmark.pedantic(run, args=(True,),
                                       rounds=1, iterations=1)
    with_sets = run(False)
    assert with_counters == with_sets


def test_ablation_edge_strategies(benchmark, bench_scale):
    """Index-driven edge phase vs probe-everything: same answers; the
    access profile differs (documented deviation)."""
    from repro.matching import find_matches
    _, schema = get_dataset("imdb", bench_scale)
    engine = get_engine("imdb", bench_scale)
    queries = _bounded_pool(schema, bench_scale, count=4)

    def run_both():
        rows = []
        for query in queries:
            prepared = engine.prepare(query)
            stats_plan, stats_probe = AccessStats(), AccessStats()
            via_plan = prepared.execute(stats=stats_plan,
                                        edge_mode=MODE_PLAN)
            via_probe = prepared.execute(stats=stats_probe,
                                         edge_mode=MODE_PROBE)
            same = ({frozenset(m.items()) for m in find_matches(
                        query, via_plan.gq, candidates=via_plan.candidates)}
                    == {frozenset(m.items()) for m in find_matches(
                        query, via_probe.gq, candidates=via_probe.candidates)})
            rows.append({"query": query.name,
                         "index_edge_checks": stats_plan.edges_checked,
                         "probe_edge_checks": stats_probe.edges_checked,
                         "answers_equal": same})
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(render_table(rows, title="Ablation: index-driven vs probe edge "
                                  "verification"))
    assert all(row["answers_equal"] for row in rows)
