"""Exp-1(1): percentage of effectively bounded queries.

Paper: 61 %, 67 %, 58 % of subgraph queries and 32 %, 41 %, 33 % of
simulation queries are effectively bounded on IMDbG, DBpediaG and WebBG.
"""

from benchmarks.conftest import DATASETS, emit
from repro.bench import exp1_percentages, render_table


def test_exp1_percentages(benchmark, bench_scale):
    rows = benchmark.pedantic(
        exp1_percentages,
        kwargs=dict(datasets=DATASETS, scale=bench_scale, count=100),
        rounds=1, iterations=1)
    emit(render_table(rows, title="Exp-1(1): % effectively bounded queries "
                                  "(paper: 61/67/58 subgraph, 32/41/33 simulation)"))
    by_name = {row["dataset"]: row for row in rows}
    for name in DATASETS:
        row = by_name[name]
        # Shape assertions: a substantial fraction is bounded, and
        # subgraph queries dominate simulation queries.
        assert row["subgraph_pct"] >= 30
        assert row["simulation_pct"] >= 5
        assert row["subgraph_pct"] > row["simulation_pct"]
