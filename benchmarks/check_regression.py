"""CI benchmark-regression gate.

Compares the JSON emitted by ``benchmarks/bench_engine_throughput.py``,
``benchmarks/bench_kernels.py``, ``benchmarks/bench_warm_start.py``,
``benchmarks/bench_serve.py``, ``benchmarks/bench_shard.py``,
``benchmarks/bench_remote.py``, ``benchmarks/bench_extension.py`` and
``benchmarks/bench_obs.py``
(under ``.benchmarks/``) against the committed floors in
``benchmarks/baselines.json`` and exits non-zero when any metric drops
more than ``TOLERANCE`` below its baseline.

Intentional perf changes: update ``baselines.json`` in the same PR and
apply the ``perf-regression-ok`` label, which makes the workflow skip
this check (the results are still uploaded as a CI artifact either way).

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py \
        [--results-dir .benchmarks] [--baselines benchmarks/baselines.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Allowed fractional drop below a baseline before the gate fails.
TOLERANCE = 0.30

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"error: missing results file {path} — did the benchmark "
              f"step run?", file=sys.stderr)
        sys.exit(2)
    except ValueError as exc:
        print(f"error: unreadable {path}: {exc}", file=sys.stderr)
        sys.exit(2)


#: Sentinel for metrics whose hardware precondition is not met (e.g. a
#: 4-worker speedup on a 2-CPU machine) — reported, never gated.
SKIPPED = "skipped"


def current_metrics(results_dir: Path) -> dict:
    """Flatten the benchmark JSON files into {suite: {metric: value}}."""
    throughput = _load(results_dir / "engine_throughput.json")
    by_mode = {row["mode"]: row for row in throughput["rows"]}
    kernels = _load(results_dir / "kernels.json")
    kernels_by_mode = {row["mode"]: row for row in kernels["rows"]}
    warm = _load(results_dir / "warm_start.json")
    warm_by_mode = {row["mode"]: row for row in warm["rows"]}
    serve = _load(results_dir / "serve.json")
    serve_by_mode = {row["mode"]: row for row in serve["rows"]}
    shard = _load(results_dir / "shard.json")
    remote = _load(results_dir / "remote.json")
    remote_rows = remote.get("rows", [])
    remote_by_mode = {row["mode"]: row for row in remote_rows}
    skewed = _load(results_dir / "remote_skewed.json")
    skewed_rows = skewed.get("rows", [])
    skewed_by_mode = {row["mode"]: row for row in skewed_rows}
    extension = _load(results_dir / "extension.json")
    extension_rows = extension.get("rows", [])
    obs = _load(results_dir / "obs.json")
    obs_by_mode = {row["mode"]: row for row in obs.get("rows", [])}
    shard_rows = [row for row in shard["rows"] if row["mode"] == "sharded"]
    shard_by_workers = {row["workers"]: row for row in shard_rows}
    top_workers = max(shard_by_workers, default=0)
    cpu_count = shard_rows[0]["cpu_count"] if shard_rows else 0
    # The 4-worker speedup is physically capped by min(workers, cpus):
    # on a <4-CPU runner the metric carries no signal, so it is skipped
    # (and printed) rather than failed. A truncated shard.json (no
    # sharded rows, no workers=0 row) degrades to 'missing' metrics
    # that fail the gate, never to a traceback.
    if cpu_count >= 4 and top_workers >= 4:
        speedup_4w = shard_by_workers[top_workers]["speedup_vs_1worker"]
    else:
        speedup_4w = SKIPPED
    return {
        "engine_throughput": {
            "prepared_qps": by_mode["prepared"]["qps"],
            "batched_qps": by_mode["batched"]["qps"],
        },
        "kernels": {
            "speedup_vs_sequential":
                kernels_by_mode["vectorized"]["speedup_vs_sequential"],
            "vectorized_qps": kernels_by_mode["vectorized"]["qps"],
        },
        "warm_start": {
            "open_speedup": warm_by_mode["warm_open"]["open_speedup"],
            "prepare_speedup":
                warm_by_mode["prepared_reuse"]["prepare_speedup"],
        },
        "serve": {
            "speedup_vs_prepared":
                serve_by_mode["serve_concurrent"]["speedup_vs_prepared"],
            "concurrent_qps": serve_by_mode["serve_concurrent"]["qps"],
        },
        "shard": {
            "answers_identical": (float(all(row["answers_identical"]
                                            for row in shard_rows))
                                  if shard_rows else None),
            "speedup_4w": speedup_4w if shard_rows else None,
            "inline_qps": (shard_by_workers[0]["qps"]
                           if 0 in shard_by_workers else None),
        },
        # The remote gate is mostly machine-independent: answer identity
        # over the wire, the owner-routing message reduction, and the
        # binary-wire byte reduction (both deterministic counts, not
        # wall-clock). wire_bytes_reduction compares broadcast JSON
        # against routed *binary* scatter, so it is skipped on a
        # no-numpy build (which negotiates JSON and cannot make the
        # claim). routed_qps is the conservative absolute loopback
        # throughput floor of the routed remote mode.
        "remote": {
            "answers_identical": (float(all(row["answers_identical"]
                                            for row in remote_rows))
                                  if remote_rows else None),
            "scatter_reduction":
                (remote_by_mode["remote_routed"]["scatter_reduction"]
                 if "remote_routed" in remote_by_mode else None),
            "wire_bytes_reduction":
                ((remote_by_mode["remote_routed"].get(
                    "wire_bytes_reduction")
                  if remote_by_mode["remote_routed"].get(
                      "wire_codec") == "binary" else SKIPPED)
                 if "remote_routed" in remote_by_mode else None),
            "routed_qps":
                (remote_by_mode["remote_routed"]["qps"]
                 if "remote_routed" in remote_by_mode else None),
        },
        # The skewed-fleet gate carries the pipelined-scatter claim:
        # with one slow shard, the per-shard-progress driver must beat
        # the lock-step wave barrier by the committed ratio while
        # reproducing its answers exactly. The ratio is governed by
        # round staggering, not absolute machine speed, so it is stable
        # across runners (both modes pay the same injected latency).
        "remote_skewed": {
            "answers_identical": (float(all(row["answers_identical"]
                                            for row in skewed_rows))
                                  if skewed_rows else None),
            "pipelined_speedup":
                (skewed_by_mode["remote_pipelined"].get("pipelined_speedup")
                 if "remote_pipelined" in skewed_by_mode else None),
        },
        # The extension gate reads the minimum-M row: rescue totality
        # and rescued throughput at the tightest workable budget.
        "extension": {
            "bounded_fraction_after":
                (min(extension_rows, key=lambda r: r["m"])
                 ["bounded_fraction_after"] if extension_rows else None),
            "rescued_qps":
                (min(extension_rows, key=lambda r: r["m"])["rescued_qps"]
                 if extension_rows else None),
        },
        # The observability gate: tracing-disabled prepared qps as a
        # fraction of the uninstrumented reference (machine-relative —
        # both sides measured in the same process on the same data).
        "obs": {
            "disabled_overhead_ratio":
                (obs_by_mode["tracing_disabled"]["disabled_overhead_ratio"]
                 if "tracing_disabled" in obs_by_mode else None),
        },
    }


def compare(baselines: dict, current: dict) -> list[dict]:
    """One row per metric; ``ok`` is False for a >TOLERANCE drop. A
    ``SKIPPED`` current value (hardware precondition unmet) passes and
    is labelled as such."""
    rows = []
    for suite, metrics in baselines.items():
        if suite.startswith("_"):
            continue
        for metric, floor in metrics.items():
            if metric.startswith("_"):
                continue
            value = current.get(suite, {}).get(metric)
            threshold = floor * (1.0 - TOLERANCE)
            skipped = value == SKIPPED
            ok = skipped or (value is not None and value >= threshold)
            rows.append({"suite": suite, "metric": metric,
                         "baseline": floor, "threshold": threshold,
                         "current": None if skipped else value,
                         "skipped": skipped, "ok": ok})
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results-dir", type=Path,
                        default=_REPO_ROOT / ".benchmarks")
    parser.add_argument("--baselines", type=Path,
                        default=_REPO_ROOT / "benchmarks" / "baselines.json")
    args = parser.parse_args(argv)

    baselines = _load(args.baselines)
    rows = compare(baselines, current_metrics(args.results_dir))

    width = max(len(f"{r['suite']}.{r['metric']}") for r in rows)
    failed = False
    for row in rows:
        name = f"{row['suite']}.{row['metric']}"
        if row.get("skipped"):
            verdict = "skipped: precondition unmet"
        else:
            verdict = "ok" if row["ok"] else "REGRESSION"
        failed = failed or not row["ok"]
        if row.get("skipped"):
            current = "n/a"
        elif row["current"] is None:
            current = "missing"
        else:
            current = f"{row['current']:.1f}"
        print(f"{name:<{width}}  baseline {row['baseline']:>8.1f}  "
              f"floor {row['threshold']:>8.1f}  current {current:>8}  "
              f"[{verdict}]")
    if failed:
        print(f"\nbenchmark regression: a metric dropped >"
              f"{TOLERANCE:.0%} below benchmarks/baselines.json. If this "
              f"change is intentional, update the baselines in this PR "
              f"and apply the 'perf-regression-ok' label.",
              file=sys.stderr)
        return 1
    print("\nall benchmark metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
