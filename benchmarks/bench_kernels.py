"""Array-kernel executor speedup: vectorized vs sequential execution.

The executor-only companion to ``bench_engine_throughput.py``: the same
compiled plans run through :func:`repro.core.executor.execute_plan` and
:func:`repro.core.kernels.execute_plan_vectorized` over one frozen
session, with no plan cache, matching, or engine bookkeeping in the
timed region. The workload is 10 distinct effectively bounded IMDb
patterns executed over 5 warm rounds; both executors produce
byte-identical answers and accounting (``tests/test_kernels.py``), so
the qps ratio is pure executor speed.

Results are emitted as a text table and one JSON line (prefixed
``KERNELS_JSON``), and written to ``.benchmarks/kernels.json`` for the
CI regression gate (``check_regression.py``).

Run directly (no pytest needed)::

    PYTHONPATH=src:. python benchmarks/bench_kernels.py

or through pytest-benchmark like the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -s
"""

from __future__ import annotations

import json
from pathlib import Path

#: Workload shape: 10 distinct patterns, 5 warm rounds each.
DISTINCT = 10
ROUNDS = 5

#: The claim this benchmark gates: the array kernels execute a warm
#: repeated workload at least this many times faster than the
#: sequential reference executor.
MIN_SPEEDUP = 3.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / ".benchmarks" \
    / "kernels.json"


def run(scale: float) -> list[dict]:
    from repro.bench import kernel_speedup

    rows = kernel_speedup(dataset="imdb", scale=scale,
                          distinct=DISTINCT, rounds=ROUNDS)
    payload = {"dataset": "imdb", "scale": scale, "distinct": DISTINCT,
               "rounds": ROUNDS, "rows": rows}
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                            encoding="utf-8")
    print("KERNELS_JSON " + json.dumps(payload))
    return rows


def check(rows: list[dict]) -> None:
    """The speedup claim this PR makes, as an assertion."""
    by_mode = {row["mode"]: row for row in rows}
    speedup = by_mode["vectorized"]["speedup_vs_sequential"]
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized executor at {speedup:.2f}x sequential; the array "
        f"kernels must hold >= {MIN_SPEEDUP}x on a warm repeated "
        f"workload")


def test_kernel_speedup(benchmark, bench_scale):
    import pytest

    pytest.importorskip("numpy")
    from repro.bench import render_table

    rows = benchmark.pedantic(run, args=(bench_scale,),
                              rounds=1, iterations=1)
    from benchmarks.conftest import emit
    emit(render_table(rows, title=f"Kernel executor speedup (imdb, "
                                  f"scale={bench_scale})"))
    check(rows)


def main() -> None:
    import os

    from repro.bench import render_table

    rows = run(scale=0.05)
    print(render_table(rows, title="Kernel executor speedup (imdb, "
                                   "scale=0.05)"))
    # CI sets REPRO_BENCH_SKIP_CHECK=1 and gates on check_regression.py
    # instead, which tolerates slow shared runners.
    if not os.environ.get("REPRO_BENCH_SKIP_CHECK"):
        check(rows)


if __name__ == "__main__":
    main()
