"""Fig. 5(c,g,k): bVF2/bSim evaluation time vs ‖A‖ (12..20).

Paper shape: more access constraints give QPlan/sQPlan better plans, so
evaluation gets faster (e.g. 75.1 s -> 5.6 s for bVF2 on WebBG as ‖A‖
grows from 12 to 20). The synthetic schemas order general constraints
first, so the same trend appears: with few constraints the plans lean on
coarse anchors, with more they pick tighter ones.
"""

import pytest

from benchmarks.conftest import DATASETS, emit
from repro.bench import fig5_varying_a, render_table


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig5_varying_a(benchmark, dataset, bench_scale):
    rows = benchmark.pedantic(
        fig5_varying_a,
        kwargs=dict(dataset=dataset, constraint_counts=(12, 14, 16, 18, 20),
                    scale=bench_scale, queries_per_point=3),
        rounds=1, iterations=1)
    emit(render_table(rows, title=f"Fig. 5 (varying ‖A‖) on {dataset}: "
                                  f"seconds per query"))

    # Shape: evaluation under the largest schema is not slower than under
    # the smallest (more constraints can only improve plans), with a 2x
    # noise envelope.
    first = next((r for r in rows if r["bvf2"] is not None), None)
    last = next((r for r in reversed(rows) if r["bvf2"] is not None), None)
    if first and last and first is not last:
        assert last["bvf2"] <= 2 * first["bvf2"] + 0.05
