"""Fig. 6(a,b): minimum M making x% of queries instance-bounded.

Paper shape: M grows with the target fraction and stays a tiny fraction of
|G| (0.006 %-0.38 % for the 95 % point; 0.016 % of WebBG bounds every
query on every dataset).
"""

import pytest

from benchmarks.conftest import DATASETS, emit
from repro.bench import fig6_instance_bounded, render_table
from repro.core.actualized import SIMULATION, SUBGRAPH


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("semantics", (SUBGRAPH, SIMULATION))
def test_fig6_instance_bounded(benchmark, dataset, semantics, bench_scale):
    rows = benchmark.pedantic(
        fig6_instance_bounded,
        kwargs=dict(dataset=dataset, scale=bench_scale, count=25,
                    fractions=(0.6, 0.8, 0.9, 1.0), semantics=semantics),
        rounds=1, iterations=1)
    emit(render_table(rows, title=f"Fig. 6 ({semantics}) on {dataset}: "
                                  f"minimum M per instance-bounded fraction"))

    # Monotone: larger fractions need at least as large an M.
    ms = [row["min_m"] for row in rows if row["min_m"] is not None]
    assert ms == sorted(ms)
    # Some prefix of the workload must be instance-boundable at all.
    assert any(row["min_m"] is not None for row in rows)
