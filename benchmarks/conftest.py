"""Shared benchmark configuration.

Scale factors are deliberately modest so the whole suite finishes in
minutes on a laptop; set ``REPRO_BENCH_SCALE`` (e.g. ``0.2``) to run
closer to the paper's regime. Results are printed as text tables mirroring
the paper's figures; EXPERIMENTS.md records a reference run.
"""

from __future__ import annotations

import os

import pytest

#: Base scale for the bench datasets ("scale factor 1.0" of the sweep).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.08"))

#: Per-run timeout for the conventional baselines (the paper used 40000s).
BENCH_TIMEOUT = float(os.environ.get("REPRO_BENCH_TIMEOUT", "15"))

DATASETS = ("imdb", "dbpedia", "web")


def emit(text: str) -> None:
    """Print a result table under pytest -s / captured output."""
    print("\n" + text + "\n")


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_timeout() -> float:
    return BENCH_TIMEOUT
