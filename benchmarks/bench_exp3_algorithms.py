"""Expt-3: latency of the decision/planning algorithms themselves.

Paper: EBChk <= 7 ms, QPlan <= 37 ms, sEBChk <= 6 ms, sQPlan <= 32 ms for
all queries and constraints tested. The same order of magnitude should
hold here (pure Python, so a generous ceiling is asserted).
"""

from benchmarks.conftest import DATASETS, emit
from repro.bench import exp3_algorithm_times, render_table


def test_exp3_algorithm_times(benchmark, bench_scale):
    rows = benchmark.pedantic(
        exp3_algorithm_times,
        kwargs=dict(datasets=DATASETS, scale=bench_scale, count=50),
        rounds=1, iterations=1)
    emit(render_table(rows, title="Expt-3: max algorithm latency in ms "
                                  "(paper: EBChk 7, QPlan 37, sEBChk 6, "
                                  "sQPlan 32)"))
    for row in rows:
        for key in ("ebchk_max_ms", "qplan_max_ms", "sebchk_max_ms",
                    "sqplan_max_ms"):
            if row[key] is not None:
                assert row[key] < 1000, f"{key} should be milliseconds-scale"


def test_ebchk_micro(benchmark, bench_scale):
    """Microbenchmark: one EBChk decision on the paper's Q0 under A0."""
    from repro import AccessSchema, ebchk
    from repro.bench import get_dataset
    from repro.pattern import parse_pattern
    from tests.conftest import Q0_TEXT

    _, schema = get_dataset("imdb", bench_scale)
    a0 = AccessSchema(list(schema)[:8])
    q0 = parse_pattern(Q0_TEXT, name="Q0")
    result = benchmark(ebchk, q0, a0)
    assert result.bounded


def test_qplan_micro(benchmark, bench_scale):
    """Microbenchmark: one QPlan generation for Q0 under A0."""
    from repro import AccessSchema, qplan
    from repro.bench import get_dataset
    from repro.pattern import parse_pattern
    from tests.conftest import Q0_TEXT

    _, schema = get_dataset("imdb", bench_scale)
    a0 = AccessSchema(list(schema)[:8])
    q0 = parse_pattern(Q0_TEXT, name="Q0")
    plan = benchmark(qplan, q0, a0)
    assert plan.worst_case_nodes_fetched == 17923
