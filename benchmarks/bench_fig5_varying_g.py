"""Fig. 5(a,e,i): evaluation time vs |G| (scale-factor sweep).

Paper shape: bVF2/bSim flat and independent of |G|; VF2/optVF2 censored
beyond small scales; gsim/optgsim grow with |G|; bounded evaluation beats
the conventional algorithms by orders of magnitude at full scale.
"""

import pytest

from benchmarks.conftest import DATASETS, emit
from repro.bench import fig5_varying_g, render_table


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig5_varying_g(benchmark, dataset, bench_scale, bench_timeout):
    rows = benchmark.pedantic(
        fig5_varying_g,
        kwargs=dict(dataset=dataset, scale=bench_scale,
                    fractions=(0.25, 0.5, 0.75, 1.0), queries_per_point=3,
                    timeout=bench_timeout),
        rounds=1, iterations=1)
    emit(render_table(rows, title=f"Fig. 5 (varying |G|) on {dataset}: "
                                  f"seconds per query (None = censored)"))

    first, last = rows[0], rows[-1]
    assert last["graph_size"] > first["graph_size"]

    # Deterministic form of the flatness claim: accessed data never
    # exceeds the plan's worst case (a function of Q and A only) — so once
    # |G| outgrows that envelope, access volume is flat in |G|.
    for key, bound_key in (("bvf2_accessed", "bvf2_bound"),
                           ("bsim_accessed", "bsim_bound")):
        for row in rows:
            if row[key] is not None and row[bound_key] is not None:
                assert row[key] <= row[bound_key], \
                    f"{key} exceeded the worst-case bound"
        if (first[key] is not None and last[key] is not None
                and last[bound_key] is not None
                and last["graph_size"] > 4 * last[bound_key]):
            first_share = first[key] / first["graph_size"]
            last_share = last[key] / last["graph_size"]
            assert last_share <= first_share * 1.25 + 1e-9, \
                f"{key} grew faster than |G|"

    # Wall-clock flatness with a generous noise envelope.
    for algo in ("bvf2", "bsim"):
        if first[algo] and last[algo]:
            assert last[algo] <= max(5 * first[algo], first[algo] + 0.05), \
                f"{algo} grew with |G|"

    # Bounded evaluation always completes; if a conventional rival was
    # censored at the largest scale, that is the paper's headline gap.
    assert last["bvf2"] is not None or not rows[0]["bvf2"]
    if last["vf2"] is None:
        assert last["bvf2"] is not None
