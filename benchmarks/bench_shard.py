"""Shard scaling: scatter-gather worker processes vs one worker.

The claims the sharding subsystem (:mod:`repro.graph.partition` +
:mod:`repro.engine.parallel`) makes:

* **Correctness is unconditional** — answers at every shard/worker count
  are identical (canonical form) to the sequential engine, under both
  semantics. ``answers_identical`` must be True in every row, on any
  machine.
* **Throughput scales with hardware** — with 4 worker processes the
  prepared-query throughput must be >= 2x the 1-worker configuration
  *when the machine has >= 4 CPUs*. The speedup is physically capped by
  ``min(workers, cpu_count)``, so the assertion is skipped (and the gap
  reported) on smaller machines; ``benchmarks/check_regression.py``
  applies the same hardware gate to the committed floor.

Results are emitted as a text table and as one JSON line (prefixed
``SHARD_JSON``) and written to ``.benchmarks/shard.json``; CI's
``bench-regression`` job checks the recorded metrics against
``benchmarks/baselines.json``.

Run directly (no pytest needed)::

    PYTHONPATH=src:. python benchmarks/bench_shard.py

or through pytest-benchmark like the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_shard.py -s
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench import render_table, shard_scaling

#: Partition + workload shape.
SHARDS = 4
WORKER_COUNTS = (0, 1, 2, 4)
DISTINCT = 16
BATCHES = 20

#: The acceptance floor at the reference scale on capable hardware:
#: 4 worker processes must at least double 1-worker throughput.
MIN_SPEEDUP_4W = 2.0
MIN_CPUS_FOR_SPEEDUP = 4

#: Below this dataset scale per-batch execution is too cheap for the
#: scaling comparison to be meaningful (IPC overhead dominates).
REFERENCE_SCALE = 0.05

RESULTS_PATH = Path(__file__).resolve().parent.parent / ".benchmarks" \
    / "shard.json"


def run(scale: float) -> list[dict]:
    rows = shard_scaling(dataset="imdb", scale=scale, shards=SHARDS,
                         worker_counts=WORKER_COUNTS, distinct=DISTINCT,
                         batches=BATCHES)
    payload = {"dataset": "imdb", "scale": scale, "shards": SHARDS,
               "distinct": DISTINCT, "batches": BATCHES, "rows": rows}
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                            encoding="utf-8")
    print("SHARD_JSON " + json.dumps(payload))
    return rows


def check(rows: list[dict], scale: float) -> None:
    """The sharding claims this subsystem makes, as assertions."""
    sharded = [row for row in rows if row["mode"] == "sharded"]
    assert sharded, "no sharded rows measured"
    # Q(G_Q) = Q(G) survives partitioning: every shard/worker count must
    # reproduce the sequential answers exactly, on any machine.
    for row in sharded:
        assert row["answers_identical"], \
            f"answers diverged at workers={row['workers']}"
    by_workers = {row["workers"]: row for row in sharded}
    top = max(by_workers)
    cpu_count = sharded[0]["cpu_count"]
    speedup = by_workers[top]["speedup_vs_1worker"]
    if scale >= REFERENCE_SCALE and top >= 4 \
            and cpu_count >= MIN_CPUS_FOR_SPEEDUP:
        assert speedup >= MIN_SPEEDUP_4W, \
            (f"{top} worker processes must be >={MIN_SPEEDUP_4W}x the "
             f"1-worker throughput on a {cpu_count}-CPU machine "
             f"(got {speedup:.2f}x)")
    elif speedup is not None:
        print(f"note: speedup gate skipped (cpu_count={cpu_count}, "
              f"scale={scale}); measured {speedup:.2f}x at "
              f"workers={top}")


def test_shard_scaling(benchmark, bench_scale):
    rows = benchmark.pedantic(run, args=(bench_scale,),
                              rounds=1, iterations=1)
    from benchmarks.conftest import emit
    emit(render_table(rows, title=f"Shard scaling (imdb, "
                                  f"scale={bench_scale})"))
    check(rows, bench_scale)


def main() -> None:
    import os

    rows = run(scale=REFERENCE_SCALE)
    print(render_table(rows, title=f"Shard scaling (imdb, "
                                   f"scale={REFERENCE_SCALE})"))
    # CI sets REPRO_BENCH_SKIP_CHECK=1: there the single gate is
    # benchmarks/check_regression.py, which the 'perf-regression-ok'
    # label can skip (the JSON is still emitted and uploaded either way).
    if os.environ.get("REPRO_BENCH_SKIP_CHECK"):
        print("skipping in-script checks (REPRO_BENCH_SKIP_CHECK set)")
        return
    check(rows, REFERENCE_SCALE)


if __name__ == "__main__":
    main()
