"""Engine throughput: cold vs prepared vs batched queries/sec.

The number this repo's north star cares about: how fast can repeated
pattern queries be served once the expensive parts (snapshot, index
build, EBChk, QPlan) are amortized into a
:class:`~repro.engine.engine.QueryEngine` session?

The workload is 10 distinct effectively bounded IMDb patterns, each asked
5 times (a 50-query workload). Results are emitted both as a text table
and as one JSON line (prefixed ``ENGINE_THROUGHPUT_JSON``) and written to
``.benchmarks/engine_throughput.json``, so future PRs have a perf
trajectory to compare against.

Run directly (no pytest needed)::

    PYTHONPATH=src:. python benchmarks/bench_engine_throughput.py

or through pytest-benchmark like the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_throughput.py -s
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench import engine_throughput, render_table

#: Workload shape: 10 distinct patterns x 5 repeats = 50 queries.
DISTINCT = 10
REPEATS = 5

RESULTS_PATH = Path(__file__).resolve().parent.parent / ".benchmarks" \
    / "engine_throughput.json"


def run(scale: float) -> list[dict]:
    rows = engine_throughput(dataset="imdb", scale=scale,
                             distinct=DISTINCT, repeats=REPEATS)
    payload = {"dataset": "imdb", "scale": scale, "distinct": DISTINCT,
               "repeats": REPEATS, "rows": rows}
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                            encoding="utf-8")
    print("ENGINE_THROUGHPUT_JSON " + json.dumps(payload))
    return rows


def check(rows: list[dict]) -> None:
    """The throughput claims this PR makes, as assertions."""
    by_mode = {row["mode"]: row for row in rows}
    # >= 1 plan-cache hit per repeated pattern in the warm session.
    assert by_mode["prepared"]["plan_cache_hits"] >= \
        DISTINCT * (REPEATS - 1), "repeated patterns must hit the plan cache"
    assert by_mode["batched"]["plan_cache_hits"] >= \
        DISTINCT * (REPEATS - 1), "batched duplicates must hit the plan cache"
    # Amortized serving is measurably faster than the cold per-query path.
    assert by_mode["prepared"]["qps"] > 1.5 * by_mode["cold"]["qps"], \
        "prepared path should beat cold per-query setup"
    assert by_mode["batched"]["qps"] > 1.5 * by_mode["cold"]["qps"], \
        "batched path should beat cold per-query setup"


def test_engine_throughput(benchmark, bench_scale):
    rows = benchmark.pedantic(run, args=(bench_scale,),
                              rounds=1, iterations=1)
    from benchmarks.conftest import emit
    emit(render_table(rows, title=f"Engine throughput (imdb, "
                                  f"scale={bench_scale}): queries/sec"))
    check(rows)


def main() -> None:
    import os

    rows = run(scale=0.05)
    print(render_table(rows, title="Engine throughput (imdb, scale=0.05): "
                                   "queries/sec"))
    # CI sets REPRO_BENCH_SKIP_CHECK=1 and gates on check_regression.py
    # instead, so the 'perf-regression-ok' override label stays usable.
    if os.environ.get("REPRO_BENCH_SKIP_CHECK"):
        print("skipping in-script checks (REPRO_BENCH_SKIP_CHECK set)")
        return
    check(rows)


if __name__ == "__main__":
    main()
