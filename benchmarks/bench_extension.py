"""Online M-bounded extension: build latency and rescued throughput.

The claims the schema-lifecycle subsystem (:mod:`repro.constraints.
catalog` + :mod:`repro.engine.extension`) makes:

* **Rescue is total at a workable budget** — after extending under any
  M at or above ``find_min_m``'s answer, every previously unbounded
  workload query has a bounded plan: ``bounded_fraction_after`` must be
  1.0 in every row, on any machine.
* **Rescued queries serve at production speed** — prepared throughput
  of rescued queries (``rescued_qps``) is gated against a conservative
  absolute floor: an extension that bounds queries but serves them
  slowly would be a regression the answer counts cannot see.
* **The build is incremental** — each row adds exactly the planned
  constraints (``added_constraints``); index work for pre-existing
  constraints would show up as build-latency regressions.

Results are emitted as a text table and as one JSON line (prefixed
``EXTENSION_JSON``) and written to ``.benchmarks/extension.json``; CI's
``bench-regression`` job checks the recorded metrics against
``benchmarks/baselines.json``.

Run directly (no pytest needed)::

    PYTHONPATH=src:. python benchmarks/bench_extension.py

or through pytest-benchmark like the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_extension.py -s
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench import extension_rescue, render_table

#: Workload shape: unbounded queries rescued per budget, serving rounds.
DISTINCT = 8
REPEATS = 20

#: Below this dataset scale the rescued-throughput numbers are dominated
#: by fixed per-query overhead and carry no regression signal.
REFERENCE_SCALE = 0.05

RESULTS_PATH = Path(__file__).resolve().parent.parent / ".benchmarks" \
    / "extension.json"


def run(scale: float) -> list[dict]:
    rows = extension_rescue(dataset="imdb", scale=scale, distinct=DISTINCT,
                            repeats=REPEATS)
    payload = {"dataset": "imdb", "scale": scale, "distinct": DISTINCT,
               "repeats": REPEATS, "rows": rows}
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                            encoding="utf-8")
    print("EXTENSION_JSON " + json.dumps(payload))
    return rows


def check(rows: list[dict]) -> None:
    """The extension claims this subsystem makes, as assertions."""
    assert rows, "no extension rows measured"
    for row in rows:
        # Rescue totality: every workable budget bounds the whole
        # workload slice, on any machine.
        assert row["bounded_fraction_after"] == 1.0, \
            (f"extension at M={row['m']} left queries unbounded "
             f"({row['bounded_fraction_after']:.2f})")
        assert row["added_constraints"] > 0, \
            f"extension at M={row['m']} added nothing"
        assert row["schema_version"] == 1, \
            f"extension must publish exactly one generation ({row})"


def test_extension_rescue(benchmark, bench_scale):
    rows = benchmark.pedantic(run, args=(bench_scale,),
                              rounds=1, iterations=1)
    from benchmarks.conftest import emit
    emit(render_table(rows, title=f"Extension rescue (imdb, "
                                  f"scale={bench_scale})"))
    check(rows)


def main() -> None:
    import os

    rows = run(scale=REFERENCE_SCALE)
    print(render_table(rows, title=f"Extension rescue (imdb, "
                                   f"scale={REFERENCE_SCALE})"))
    # CI sets REPRO_BENCH_SKIP_CHECK=1: there the single gate is
    # benchmarks/check_regression.py, which the 'perf-regression-ok'
    # label can skip (the JSON is still emitted and uploaded either way).
    if os.environ.get("REPRO_BENCH_SKIP_CHECK"):
        print("skipping in-script checks (REPRO_BENCH_SKIP_CHECK set)")
        return
    check(rows)


if __name__ == "__main__":
    main()
