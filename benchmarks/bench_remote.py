"""Remote shard fleet: owner routing vs broadcast, on a skewed cover.

The claims the remote backend (:mod:`repro.server.shardserver` +
``RemoteShardBackend``) makes:

* **Correctness is unconditional** — the TCP fleet reproduces the
  inline scatter backend's answers exactly (canonical form), under both
  semantics, with routing on or off. ``answers_identical`` must be True
  in every row, on any machine.
* **Owner routing cuts wire traffic** — on a label-partitioned cover
  (each label's nodes owned by one shard) routed scatter must send at
  most half the messages broadcast would, i.e. ``scatter_reduction =
  broadcast_messages / routed_messages >= 2.0`` with 4 shards. This is
  a message-count ratio, not a wall-clock one, so it is deterministic
  on any machine and is what ``benchmarks/check_regression.py`` gates
  on (absolute qps over loopback says little about a real network).
* **The binary wire format closes the byte gap** — owner-routed scatter
  in the negotiated packed-binary codec must move at least 5x fewer
  bytes than broadcast JSON-lines for the identical workload
  (``wire_bytes_reduction = broadcast_json_bytes / routed_binary_bytes
  >= 5.0``), and every remote mode's negotiated codec must match its
  ``wire_format`` knob. Byte counts come from the backend's per-shard
  wire counters, so this ratio too is deterministic.

Results are emitted as a text table and as one JSON line (prefixed
``REMOTE_JSON``) and written to ``.benchmarks/remote.json``; CI's
``bench-regression`` job checks the recorded metrics against
``benchmarks/baselines.json``.

Run directly (no pytest needed)::

    PYTHONPATH=src:. python benchmarks/bench_remote.py

or through pytest-benchmark like the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_remote.py -s
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench import remote_fleet, remote_skewed, render_table

#: Fleet + workload shape.
SHARDS = 4
DISTINCT = 8
BATCHES = 5

#: Skewed-fleet leg: queries per semantics and the injected scatter
#: latency on shard 0.
SKEWED_DISTINCT = 32
SKEWED_DELAY_MS = 40.0

#: On a label-partitioned cover with 4 shards, owner routing must cut
#: scatter messages at least in half vs broadcast. (The theoretical
#: ceiling for single-owner tasks is SHARDS x.)
MIN_SCATTER_REDUCTION = 2.0

#: Owner-routed binary scatter vs broadcast JSON-lines: bytes on the
#: wire must drop at least 5x (routing contributes up to SHARDS x,
#: width-adaptive packing the rest). Only gated when numpy is present —
#: a no-numpy build negotiates JSON and skips the binary claim.
MIN_WIRE_BYTES_REDUCTION = 5.0

#: On the 4-shard skewed cover (one shard with injected latency) the
#: pipelined scatter driver must finish the workload at least twice as
#: fast as the lock-step wave barrier: executions pay the slow shard's
#: latency only for their own rounds there, not for every wave any
#: query in the batch needed.
MIN_PIPELINED_SPEEDUP = 2.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / ".benchmarks" \
    / "remote.json"
SKEWED_RESULTS_PATH = RESULTS_PATH.with_name("remote_skewed.json")


def run(scale: float) -> list[dict]:
    rows = remote_fleet(dataset="imdb", scale=scale, shards=SHARDS,
                        distinct=DISTINCT, batches=BATCHES)
    payload = {"dataset": "imdb", "scale": scale, "shards": SHARDS,
               "distinct": DISTINCT, "batches": BATCHES, "rows": rows}
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                            encoding="utf-8")
    print("REMOTE_JSON " + json.dumps(payload))
    return rows


def run_skewed(scale: float) -> list[dict]:
    rows = remote_skewed(dataset="imdb", scale=scale, shards=SHARDS,
                         distinct=SKEWED_DISTINCT,
                         delay_ms=SKEWED_DELAY_MS)
    payload = {"dataset": "imdb", "scale": scale, "shards": SHARDS,
               "distinct": SKEWED_DISTINCT, "delay_ms": SKEWED_DELAY_MS,
               "rows": rows}
    SKEWED_RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    SKEWED_RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                                   encoding="utf-8")
    print("REMOTE_SKEWED_JSON " + json.dumps(payload))
    return rows


def check(rows: list[dict]) -> None:
    """The remote-backend claims, as assertions."""
    from repro.server import protocol

    by_mode = {row["mode"]: row for row in rows}
    assert {"inline", "remote_routed", "remote_json",
            "remote_broadcast"} <= by_mode.keys(), \
        f"missing modes: {sorted(by_mode)}"
    # Q(G_Q) = Q(G) survives the wire: every mode must reproduce the
    # inline answers exactly, on any machine, in either codec.
    for row in rows:
        assert row["answers_identical"], \
            f"answers diverged in mode={row['mode']}"
    routed = by_mode["remote_routed"]
    reduction = routed["scatter_reduction"]
    assert reduction is not None and reduction >= MIN_SCATTER_REDUCTION, \
        (f"owner routing must cut scatter messages >="
         f"{MIN_SCATTER_REDUCTION}x vs broadcast on a label-partitioned "
         f"{SHARDS}-shard cover (got {reduction})")
    # Broadcast mode really broadcasts: actual == would-be-broadcast.
    broadcast = by_mode["remote_broadcast"]
    assert broadcast["scatter_messages"] == \
        broadcast["scatter_messages_broadcast"], \
        "owner_routing=False must send every task to every shard"
    # Each mode negotiated what its knob demanded.
    assert by_mode["remote_json"]["wire_codec"] == "json"
    assert broadcast["wire_codec"] == "json"
    if protocol.binary_supported():
        assert routed["wire_codec"] == "binary", \
            "auto must negotiate the binary codec when numpy is present"
        bytes_reduction = routed.get("wire_bytes_reduction")
        assert bytes_reduction is not None \
            and bytes_reduction >= MIN_WIRE_BYTES_REDUCTION, \
            (f"routed-binary scatter must move >="
             f"{MIN_WIRE_BYTES_REDUCTION}x fewer bytes than broadcast "
             f"JSON (got {bytes_reduction})")
    else:
        assert routed["wire_codec"] == "json"


def check_skewed(rows: list[dict]) -> None:
    """The pipelined-scatter claims, as assertions."""
    by_mode = {row["mode"]: row for row in rows}
    assert {"inline", "remote_barrier", "remote_pipelined"} \
        <= by_mode.keys(), f"missing modes: {sorted(by_mode)}"
    for row in rows:
        assert row["answers_identical"], \
            f"answers diverged in mode={row['mode']}"
    pipelined = by_mode["remote_pipelined"]
    speedup = pipelined.get("pipelined_speedup")
    assert speedup is not None and speedup >= MIN_PIPELINED_SPEEDUP, \
        (f"pipelined scatter must beat the wave barrier >="
         f"{MIN_PIPELINED_SPEEDUP}x on the {SHARDS}-shard skewed cover "
         f"(got {speedup})")
    # The overlap is real, not incidental: rounds were submitted with
    # earlier ones still in flight, several requests rode one
    # connection, and cross-execution dedup fired.
    assert pipelined["rounds_overlapped"] > 0
    assert pipelined["inflight_peak"] >= 2
    assert pipelined["slow_shard_depth_peak"] >= 2
    assert pipelined["scatter_dedup_hits"] > 0
    # Barrier mode is the reference semantics: nothing overlaps there.
    assert by_mode["remote_barrier"]["rounds_overlapped"] == 0


def test_remote_fleet(benchmark, bench_scale):
    rows = benchmark.pedantic(run, args=(bench_scale,),
                              rounds=1, iterations=1)
    from benchmarks.conftest import emit
    emit(render_table(rows, title=f"Remote fleet (imdb, "
                                  f"scale={bench_scale}, "
                                  f"shards={SHARDS})"))
    check(rows)


def test_remote_skewed(benchmark, bench_scale):
    rows = benchmark.pedantic(run_skewed, args=(bench_scale,),
                              rounds=1, iterations=1)
    from benchmarks.conftest import emit
    emit(render_table(rows, title=f"Remote skewed fleet (imdb, "
                                  f"scale={bench_scale}, shards={SHARDS}, "
                                  f"delay={SKEWED_DELAY_MS}ms)"))
    check_skewed(rows)


def main() -> None:
    import os

    rows = run(scale=0.05)
    print(render_table(rows, title=f"Remote fleet (imdb, scale=0.05, "
                                   f"shards={SHARDS})"))
    skewed_rows = run_skewed(scale=0.05)
    print(render_table(skewed_rows,
                       title=f"Remote skewed fleet (imdb, scale=0.05, "
                             f"shards={SHARDS}, "
                             f"delay={SKEWED_DELAY_MS}ms)"))
    # CI sets REPRO_BENCH_SKIP_CHECK=1: there the single gate is
    # benchmarks/check_regression.py, which the 'perf-regression-ok'
    # label can skip (the JSON is still emitted and uploaded either way).
    if os.environ.get("REPRO_BENCH_SKIP_CHECK"):
        print("skipping in-script checks (REPRO_BENCH_SKIP_CHECK set)")
        return
    check(rows)
    check_skewed(skewed_rows)


if __name__ == "__main__":
    main()
