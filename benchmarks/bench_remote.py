"""Remote shard fleet: owner routing vs broadcast, on a skewed cover.

The claims the remote backend (:mod:`repro.server.shardserver` +
``RemoteShardBackend``) makes:

* **Correctness is unconditional** — the TCP fleet reproduces the
  inline scatter backend's answers exactly (canonical form), under both
  semantics, with routing on or off. ``answers_identical`` must be True
  in every row, on any machine.
* **Owner routing cuts wire traffic** — on a label-partitioned cover
  (each label's nodes owned by one shard) routed scatter must send at
  most half the messages broadcast would, i.e. ``scatter_reduction =
  broadcast_messages / routed_messages >= 2.0`` with 4 shards. This is
  a message-count ratio, not a wall-clock one, so it is deterministic
  on any machine and is what ``benchmarks/check_regression.py`` gates
  on (absolute qps over loopback says little about a real network).
* **The binary wire format closes the byte gap** — owner-routed scatter
  in the negotiated packed-binary codec must move at least 5x fewer
  bytes than broadcast JSON-lines for the identical workload
  (``wire_bytes_reduction = broadcast_json_bytes / routed_binary_bytes
  >= 5.0``), and every remote mode's negotiated codec must match its
  ``wire_format`` knob. Byte counts come from the backend's per-shard
  wire counters, so this ratio too is deterministic.

Results are emitted as a text table and as one JSON line (prefixed
``REMOTE_JSON``) and written to ``.benchmarks/remote.json``; CI's
``bench-regression`` job checks the recorded metrics against
``benchmarks/baselines.json``.

Run directly (no pytest needed)::

    PYTHONPATH=src:. python benchmarks/bench_remote.py

or through pytest-benchmark like the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_remote.py -s
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench import remote_fleet, render_table

#: Fleet + workload shape.
SHARDS = 4
DISTINCT = 8
BATCHES = 5

#: On a label-partitioned cover with 4 shards, owner routing must cut
#: scatter messages at least in half vs broadcast. (The theoretical
#: ceiling for single-owner tasks is SHARDS x.)
MIN_SCATTER_REDUCTION = 2.0

#: Owner-routed binary scatter vs broadcast JSON-lines: bytes on the
#: wire must drop at least 5x (routing contributes up to SHARDS x,
#: width-adaptive packing the rest). Only gated when numpy is present —
#: a no-numpy build negotiates JSON and skips the binary claim.
MIN_WIRE_BYTES_REDUCTION = 5.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / ".benchmarks" \
    / "remote.json"


def run(scale: float) -> list[dict]:
    rows = remote_fleet(dataset="imdb", scale=scale, shards=SHARDS,
                        distinct=DISTINCT, batches=BATCHES)
    payload = {"dataset": "imdb", "scale": scale, "shards": SHARDS,
               "distinct": DISTINCT, "batches": BATCHES, "rows": rows}
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                            encoding="utf-8")
    print("REMOTE_JSON " + json.dumps(payload))
    return rows


def check(rows: list[dict]) -> None:
    """The remote-backend claims, as assertions."""
    from repro.server import protocol

    by_mode = {row["mode"]: row for row in rows}
    assert {"inline", "remote_routed", "remote_json",
            "remote_broadcast"} <= by_mode.keys(), \
        f"missing modes: {sorted(by_mode)}"
    # Q(G_Q) = Q(G) survives the wire: every mode must reproduce the
    # inline answers exactly, on any machine, in either codec.
    for row in rows:
        assert row["answers_identical"], \
            f"answers diverged in mode={row['mode']}"
    routed = by_mode["remote_routed"]
    reduction = routed["scatter_reduction"]
    assert reduction is not None and reduction >= MIN_SCATTER_REDUCTION, \
        (f"owner routing must cut scatter messages >="
         f"{MIN_SCATTER_REDUCTION}x vs broadcast on a label-partitioned "
         f"{SHARDS}-shard cover (got {reduction})")
    # Broadcast mode really broadcasts: actual == would-be-broadcast.
    broadcast = by_mode["remote_broadcast"]
    assert broadcast["scatter_messages"] == \
        broadcast["scatter_messages_broadcast"], \
        "owner_routing=False must send every task to every shard"
    # Each mode negotiated what its knob demanded.
    assert by_mode["remote_json"]["wire_codec"] == "json"
    assert broadcast["wire_codec"] == "json"
    if protocol.binary_supported():
        assert routed["wire_codec"] == "binary", \
            "auto must negotiate the binary codec when numpy is present"
        bytes_reduction = routed.get("wire_bytes_reduction")
        assert bytes_reduction is not None \
            and bytes_reduction >= MIN_WIRE_BYTES_REDUCTION, \
            (f"routed-binary scatter must move >="
             f"{MIN_WIRE_BYTES_REDUCTION}x fewer bytes than broadcast "
             f"JSON (got {bytes_reduction})")
    else:
        assert routed["wire_codec"] == "json"


def test_remote_fleet(benchmark, bench_scale):
    rows = benchmark.pedantic(run, args=(bench_scale,),
                              rounds=1, iterations=1)
    from benchmarks.conftest import emit
    emit(render_table(rows, title=f"Remote fleet (imdb, "
                                  f"scale={bench_scale}, "
                                  f"shards={SHARDS})"))
    check(rows)


def main() -> None:
    import os

    rows = run(scale=0.05)
    print(render_table(rows, title=f"Remote fleet (imdb, scale=0.05, "
                                   f"shards={SHARDS})"))
    # CI sets REPRO_BENCH_SKIP_CHECK=1: there the single gate is
    # benchmarks/check_regression.py, which the 'perf-regression-ok'
    # label can skip (the JSON is still emitted and uploaded either way).
    if os.environ.get("REPRO_BENCH_SKIP_CHECK"):
        print("skipping in-script checks (REPRO_BENCH_SKIP_CHECK set)")
        return
    check(rows)


if __name__ == "__main__":
    main()
