"""Fig. 5(d,h,l): data accessed and index size relative to |G|, vs #n.

Paper: query plans access no more than 0.13 % of |G| for all queries on
all datasets, with the indices used below 8 % of |G|. At bench scale the
ratios are larger (|G| is ~1000x smaller while plan access volumes are
scale-free) — the assertion is that accessed data is a small fraction of
the graph and essentially flat in #n.
"""

import pytest

from benchmarks.conftest import DATASETS, emit
from repro.bench import fig5_index_size, render_table


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig5_index_size(benchmark, dataset, bench_scale):
    rows = benchmark.pedantic(
        fig5_index_size,
        kwargs=dict(dataset=dataset, node_counts=(3, 4, 5, 6, 7),
                    scale=bench_scale, queries_per_point=3),
        rounds=1, iterations=1)
    emit(render_table(rows, title=f"Fig. 5 (accessed & index / |G|) on "
                                  f"{dataset}"))

    for row in rows:
        for key in ("bvf2_accessed", "bsim_accessed"):
            if row[key] is not None:
                assert row[key] < 1.0, "accessed more than the whole graph"
