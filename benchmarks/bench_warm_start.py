"""Warm start: cold build vs mmap-style artifact open vs plan reuse.

The claim the persistent-artifact layer (:mod:`repro.engine.persist`)
makes: a process that opens a compiled artifact skips graph snapshot,
index build, and EBChk/QPlan for previously prepared canonical forms —
so ``QueryEngine.open_path`` must be at least an order of magnitude
faster than a cold ``QueryEngine.open`` at the reference scale.

Results are emitted as a text table and as one JSON line (prefixed
``WARM_START_JSON``) and written to ``.benchmarks/warm_start.json``;
CI's ``bench-regression`` job checks the recorded speedups against
``benchmarks/baselines.json``.

Run directly (no pytest needed)::

    PYTHONPATH=src:. python benchmarks/bench_warm_start.py

or through pytest-benchmark like the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_warm_start.py -s
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench import render_table, warm_start

#: Workload shape: distinct bounded patterns compiled into the artifact.
DISTINCT = 8

#: The speedup floor the acceptance criteria demand at the reference
#: scale (warm open_path vs cold QueryEngine.open).
MIN_OPEN_SPEEDUP = 10.0

#: Below this dataset scale the cold build is too small for the 10x
#: claim to be meaningful (there is little index build to skip).
REFERENCE_SCALE = 0.05

RESULTS_PATH = Path(__file__).resolve().parent.parent / ".benchmarks" \
    / "warm_start.json"


def run(scale: float) -> list[dict]:
    rows = warm_start(dataset="imdb", scale=scale, distinct=DISTINCT)
    payload = {"dataset": "imdb", "scale": scale, "distinct": DISTINCT,
               "rows": rows}
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                            encoding="utf-8")
    print("WARM_START_JSON " + json.dumps(payload))
    return rows


def check(rows: list[dict], scale: float) -> None:
    """The warm-start claims this layer makes, as assertions."""
    by_mode = {row["mode"]: row for row in rows}
    reuse = by_mode["prepared_reuse"]
    assert reuse["plan_cache_hits"] >= reuse["queries"], \
        "re-preparing persisted patterns must be pure plan-cache hits"
    speedup = by_mode["warm_open"]["open_speedup"]
    floor = MIN_OPEN_SPEEDUP if scale >= REFERENCE_SCALE else 2.0
    assert speedup >= floor, \
        (f"warm open_path must be >={floor}x faster than cold open at "
         f"scale {scale} (got {speedup:.1f}x)")


def test_warm_start(benchmark, bench_scale):
    rows = benchmark.pedantic(run, args=(bench_scale,),
                              rounds=1, iterations=1)
    from benchmarks.conftest import emit
    emit(render_table(rows, title=f"Warm start (imdb, "
                                  f"scale={bench_scale})"))
    check(rows, bench_scale)


def main() -> None:
    import os

    rows = run(scale=REFERENCE_SCALE)
    print(render_table(rows, title=f"Warm start (imdb, "
                                   f"scale={REFERENCE_SCALE})"))
    # CI sets REPRO_BENCH_SKIP_CHECK=1: there the single gate is
    # benchmarks/check_regression.py, which the 'perf-regression-ok'
    # label can skip — an in-script assert would make that override
    # unusable (the JSON is still emitted and uploaded either way).
    if os.environ.get("REPRO_BENCH_SKIP_CHECK"):
        print("skipping in-script checks (REPRO_BENCH_SKIP_CHECK set)")
        return
    check(rows, REFERENCE_SCALE)


if __name__ == "__main__":
    main()
