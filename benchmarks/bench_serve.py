"""Serve load: concurrent query service vs single-threaded prepared serving.

The claim the serving subsystem (:mod:`repro.server`) makes: putting the
asyncio front-end + worker pool + micro-batching in front of one frozen
engine must *add* throughput under concurrent clients, not just
overhead — and admission control must reject over-budget queries with
the typed :class:`~repro.errors.AdmissionRejected` (never silently
executing them unbounded).

Results are emitted as a text table and as one JSON line (prefixed
``SERVE_JSON``) and written to ``.benchmarks/serve.json``; CI's
``bench-regression`` job checks the recorded metrics against
``benchmarks/baselines.json``.

Run directly (no pytest needed)::

    PYTHONPATH=src:. python benchmarks/bench_serve.py

or through pytest-benchmark like the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -s
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench import render_table, serve_load

#: Workload shape: 8 distinct bounded patterns, 8 concurrent clients
#: sending 50 requests each (+1 over-budget probe per client).
DISTINCT = 8
CLIENTS = 8
REQUESTS_PER_CLIENT = 50

#: The acceptance floor at the reference scale: the concurrent server
#: must at least match the single-threaded prepared path.
MIN_SPEEDUP = 1.0

#: Below this dataset scale per-query execution is too cheap for the
#: comparison to be meaningful (protocol overhead dominates).
REFERENCE_SCALE = 0.05

RESULTS_PATH = Path(__file__).resolve().parent.parent / ".benchmarks" \
    / "serve.json"


def run(scale: float) -> list[dict]:
    rows = serve_load(dataset="imdb", scale=scale, distinct=DISTINCT,
                      clients=CLIENTS,
                      requests_per_client=REQUESTS_PER_CLIENT)
    payload = {"dataset": "imdb", "scale": scale, "distinct": DISTINCT,
               "clients": CLIENTS,
               "requests_per_client": REQUESTS_PER_CLIENT, "rows": rows}
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                            encoding="utf-8")
    print("SERVE_JSON " + json.dumps(payload))
    return rows


def check(rows: list[dict], scale: float) -> None:
    """The serving claims this subsystem makes, as assertions."""
    by_mode = {row["mode"]: row for row in rows}
    serve = by_mode["serve_concurrent"]
    # Over-budget queries are rejected with a typed error — one probe per
    # client was sent, and every one must have been refused.
    assert serve["rejected_over_budget"] >= CLIENTS, \
        "every over-budget probe must be rejected, never executed"
    assert serve["rejection_error"] == "AdmissionRejected", \
        f"rejections must surface as AdmissionRejected, " \
        f"got {serve['rejection_error']!r}"
    if scale >= REFERENCE_SCALE:
        assert serve["speedup_vs_prepared"] >= MIN_SPEEDUP, \
            (f"concurrent server must be >={MIN_SPEEDUP}x the "
             f"single-threaded prepared path at scale {scale} "
             f"(got {serve['speedup_vs_prepared']:.2f}x)")


def test_serve_load(benchmark, bench_scale):
    rows = benchmark.pedantic(run, args=(bench_scale,),
                              rounds=1, iterations=1)
    from benchmarks.conftest import emit
    emit(render_table(rows, title=f"Serve load (imdb, "
                                  f"scale={bench_scale})"))
    check(rows, bench_scale)


def main() -> None:
    import os

    rows = run(scale=REFERENCE_SCALE)
    print(render_table(rows, title=f"Serve load (imdb, "
                                   f"scale={REFERENCE_SCALE})"))
    # CI sets REPRO_BENCH_SKIP_CHECK=1: there the single gate is
    # benchmarks/check_regression.py, which the 'perf-regression-ok'
    # label can skip (the JSON is still emitted and uploaded either way).
    if os.environ.get("REPRO_BENCH_SKIP_CHECK"):
        print("skipping in-script checks (REPRO_BENCH_SKIP_CHECK set)")
        return
    check(rows, REFERENCE_SCALE)


if __name__ == "__main__":
    main()
