"""Benchmark suite reproducing every table and figure of the paper's
evaluation (Section VII). Run with::

    pytest benchmarks/ --benchmark-only -s

See DESIGN.md for the experiment index and EXPERIMENTS.md for reference
results.
"""
